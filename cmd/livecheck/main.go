// Command livecheck answers liveness queries for a textual IR function.
//
// Usage:
//
//	livecheck [flags] file.ssair
//	livecheck [flags] -            # read from stdin
//
// With -q, it answers individual queries; without, it dumps the live-in and
// live-out sets of every block (computed through the checker's
// characteristic function).
//
//	livecheck -q '%x@b3' -q 'out:%y@b2' prog.ssair
//
// Flags:
//
//	-construct    run SSA construction first (for slot-form inputs)
//	-engine       checker | dataflow | lao | pervar | loops
//	-verify       verify strict SSA before analyzing (default true)
//	-stats        print CFG/analysis statistics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fastliveness"
	"fastliveness/internal/cfg"
	"fastliveness/internal/dataflow"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
	"fastliveness/internal/lao"
	"fastliveness/internal/loops"
	"fastliveness/internal/pervar"
	"fastliveness/internal/ssa"
)

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ",") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	var (
		construct = flag.Bool("construct", false, "run SSA construction (slot-form inputs)")
		engine    = flag.String("engine", "checker", "liveness engine: checker|dataflow|lao|pervar|loops")
		verify    = flag.Bool("verify", true, "verify strict SSA before analyzing")
		stat      = flag.Bool("stats", false, "print CFG/analysis statistics")
		queries   queryList
	)
	flag.Var(&queries, "q", "query '[in:|out:]%value@block' (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: livecheck [flags] file.ssair (or - for stdin)")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *construct, *engine, *verify, *stat, queries); err != nil {
		fmt.Fprintln(os.Stderr, "livecheck:", err)
		os.Exit(1)
	}
}

func run(path string, construct bool, engine string, verify, stat bool, queries queryList) error {
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	f, err := ir.Parse(string(src))
	if err != nil {
		return err
	}
	if construct {
		ssa.Construct(f)
	}
	if verify {
		if err := ssa.VerifyStrict(f); err != nil {
			return fmt.Errorf("not strict SSA (use -construct for slot form, -verify=false to skip): %w", err)
		}
	}

	liveIn, liveOut, err := buildEngine(engine, f)
	if err != nil {
		return err
	}

	if stat {
		printStats(f)
	}

	if len(queries) > 0 {
		for _, q := range queries {
			if err := answer(f, q, liveIn, liveOut); err != nil {
				return err
			}
		}
		return nil
	}

	// Dump per-block sets.
	for _, b := range f.Blocks {
		var ins, outs []string
		f.Values(func(v *ir.Value) {
			if !v.Op.HasResult() {
				return
			}
			if liveIn(v, b) {
				ins = append(ins, v.String())
			}
			if liveOut(v, b) {
				outs = append(outs, v.String())
			}
		})
		fmt.Printf("%s:\n  live-in : %s\n  live-out: %s\n",
			b, strings.Join(ins, " "), strings.Join(outs, " "))
	}
	return nil
}

type queryFunc func(*ir.Value, *ir.Block) bool

func buildEngine(name string, f *ir.Func) (liveIn, liveOut queryFunc, err error) {
	switch name {
	case "checker":
		live, err := fastliveness.Analyze(f, fastliveness.Config{})
		if err != nil {
			return nil, nil, err
		}
		return live.IsLiveIn, live.IsLiveOut, nil
	case "dataflow":
		r := dataflow.Analyze(f)
		return r.IsLiveIn, r.IsLiveOut, nil
	case "lao":
		r := lao.Analyze(f, lao.Options{})
		return r.IsLiveIn, r.IsLiveOut, nil
	case "pervar":
		r := pervar.Analyze(f)
		return r.IsLiveIn, r.IsLiveOut, nil
	case "loops":
		r, err := loops.Liveness(f)
		if err != nil {
			return nil, nil, err
		}
		return r.IsLiveIn, r.IsLiveOut, nil
	}
	return nil, nil, fmt.Errorf("unknown engine %q", name)
}

func answer(f *ir.Func, q string, liveIn, liveOut queryFunc) error {
	kind := "in"
	rest := q
	switch {
	case strings.HasPrefix(q, "in:"):
		rest = q[3:]
	case strings.HasPrefix(q, "out:"):
		kind, rest = "out", q[4:]
	}
	at := strings.IndexByte(rest, '@')
	if at < 0 || !strings.HasPrefix(rest, "%") {
		return fmt.Errorf("bad query %q (want '[in:|out:]%%value@block')", q)
	}
	v := f.ValueByName(rest[1:at])
	if v == nil {
		return fmt.Errorf("unknown value %q", rest[:at])
	}
	b := f.BlockByName(rest[at+1:])
	if b == nil {
		return fmt.Errorf("unknown block %q", rest[at+1:])
	}
	var res bool
	if kind == "in" {
		res = liveIn(v, b)
	} else {
		res = liveOut(v, b)
	}
	fmt.Printf("live-%s(%s, %s) = %v\n", kind, v, b, res)
	return nil
}

func printStats(f *ir.Func) {
	g, _ := cfg.FromFunc(f)
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)
	vars := 0
	f.Values(func(v *ir.Value) {
		if v.Op.HasResult() {
			vars++
		}
	})
	fmt.Printf("func @%s: %d blocks, %d edges (%d back), %d variables, reducible=%v\n",
		f.Name, len(f.Blocks), g.NumEdges(), len(d.BackEdges), vars, dom.IsReducible(d, tree))
}
