package fastliveness

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"fastliveness/internal/gen"
	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

// engineCorpus generates a deterministic multi-function SSA corpus with
// mixed shapes, including some irreducible control flow.
func engineCorpus(tb testing.TB, n int, seed int64) []*ir.Func {
	tb.Helper()
	funcs := make([]*ir.Func, n)
	for i := range funcs {
		c := gen.Default(seed + int64(i)*7919)
		c.TargetBlocks = 12 + (i*17)%60
		c.Irreducible = i%11 == 3
		f := gen.Generate(fmt.Sprintf("f%03d", i), c)
		ssa.Construct(f)
		funcs[i] = f
	}
	return funcs
}

// fingerprint renders every (value, block) live-in/out answer of every
// function, in program order, as one string — the byte-identical shape the
// determinism and equivalence tests compare.
func fingerprint(tb testing.TB, e *Engine, funcs []*ir.Func) string {
	tb.Helper()
	var sb strings.Builder
	for _, f := range funcs {
		live, err := e.Liveness(f)
		if err != nil {
			tb.Fatalf("%s: %v", f.Name, err)
		}
		fmt.Fprintf(&sb, "func %s\n", f.Name)
		f.Values(func(v *ir.Value) {
			if !v.Op.HasResult() {
				return
			}
			for _, b := range f.Blocks {
				fmt.Fprintf(&sb, "%s@%s:%v,%v ", v, b, live.IsLiveIn(v, b), live.IsLiveOut(v, b))
			}
		})
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestEngineDeterministicAcrossParallelism(t *testing.T) {
	funcs := engineCorpus(t, 24, 1)
	var prints []string
	for _, workers := range []int{1, 4, 16} {
		e, err := AnalyzeProgram(funcs, EngineConfig{Parallelism: workers})
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		prints = append(prints, fingerprint(t, e, funcs))
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] != prints[0] {
			t.Fatalf("results differ between parallelism 1 and %d", []int{1, 4, 16}[i])
		}
	}
}

// allQueries enumerates every (variable, block) pair of f.
func allQueries(f *ir.Func) []Query {
	var qs []Query
	f.Values(func(v *ir.Value) {
		if !v.Op.HasResult() {
			return
		}
		for _, b := range f.Blocks {
			qs = append(qs, Query{V: v, B: b})
		}
	})
	return qs
}

func TestBatchMatchesSingleQueries(t *testing.T) {
	funcs := engineCorpus(t, 8, 42)
	e, err := AnalyzeProgram(funcs, EngineConfig{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range funcs {
		qs := allQueries(f)
		if len(qs) <= batchParallelThreshold && f == funcs[0] {
			t.Logf("note: %s has only %d queries; sharded path exercised by larger funcs", f.Name, len(qs))
		}
		ins, err := e.BatchIsLiveIn(f, qs)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := e.BatchIsLiveOut(f, qs)
		if err != nil {
			t.Fatal(err)
		}
		live, err := e.Liveness(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			if want := live.IsLiveIn(q.V, q.B); ins[i] != want {
				t.Fatalf("%s: batch live-in(%s,%s)=%v, single=%v", f.Name, q.V, q.B, ins[i], want)
			}
			if want := live.IsLiveOut(q.V, q.B); outs[i] != want {
				t.Fatalf("%s: batch live-out(%s,%s)=%v, single=%v", f.Name, q.V, q.B, outs[i], want)
			}
		}
	}
}

func TestEngineEvictionRebuilds(t *testing.T) {
	funcs := engineCorpus(t, 6, 7)
	e, err := AnalyzeProgram(funcs, EngineConfig{MaxCached: 2, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Resident(); got != 2 {
		t.Fatalf("Resident = %d after precompute with MaxCached=2", got)
	}
	// Un-cached engine as the reference for a fully evicted function.
	ref, err := Analyze(funcs[0], Config{})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := e.Liveness(funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range funcs[0].Blocks {
		funcs[0].Values(func(v *ir.Value) {
			if !v.Op.HasResult() {
				return
			}
			if rebuilt.IsLiveIn(v, b) != ref.IsLiveIn(v, b) {
				t.Fatalf("rebuilt analysis disagrees at live-in(%s,%s)", v, b)
			}
		})
	}
	if got := e.Resident(); got != 2 {
		t.Fatalf("Resident = %d after rebuild, want 2", got)
	}
	if e.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes should be positive with resident analyses")
	}
}

func TestEnginePrecomputeErrorNamesFunction(t *testing.T) {
	good := engineCorpus(t, 2, 3)
	bad := ir.NewFunc("island")
	bad.NewBlock(ir.BlockRet)
	bad.NewBlock(ir.BlockRet) // unreachable
	e := NewEngine(EngineConfig{Parallelism: 2})
	e.Add(good[0], bad, good[1])
	err := e.Precompute()
	if err == nil || !strings.Contains(err.Error(), "island") {
		t.Fatalf("Precompute error = %v, want mention of 'island'", err)
	}
	// Healthy functions are still served.
	if _, err := e.Liveness(good[1]); err != nil {
		t.Fatalf("good function after failed precompute: %v", err)
	}
	// The failure is sticky until invalidated.
	if _, err := e.Liveness(bad); err == nil {
		t.Fatal("bad function should keep failing")
	}
}

func TestEngineRejectsUnregistered(t *testing.T) {
	e := NewEngine(EngineConfig{})
	f := engineCorpus(t, 1, 9)[0]
	if _, err := e.Liveness(f); err == nil {
		t.Fatal("Liveness on an unregistered function should fail")
	}
	if _, err := e.BatchIsLiveIn(f, nil); err == nil {
		t.Fatal("BatchIsLiveIn on an unregistered function should fail")
	}
}

func TestEngineInvalidate(t *testing.T) {
	funcs := engineCorpus(t, 1, 11)
	f := funcs[0]
	e, err := AnalyzeProgram(funcs, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := e.Liveness(f)
	if err != nil {
		t.Fatal(err)
	}
	e.Invalidate(f)
	if got := e.Resident(); got != 0 {
		t.Fatalf("Resident = %d after Invalidate, want 0", got)
	}
	after, err := e.Liveness(f)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("Invalidate should force a fresh analysis object")
	}
}

// TestEngineConcurrentStress hammers one engine from many goroutines —
// cache hits, rebuild-after-eviction races, shared batch queries — and is
// the workload the CI -race run checks. Answers are validated against
// per-function reference analyses.
func TestEngineConcurrentStress(t *testing.T) {
	n := 16
	if testing.Short() {
		n = 6
	}
	funcs := engineCorpus(t, n, 23)
	refs := make(map[*ir.Func]*Liveness, n)
	for _, f := range funcs {
		ref, err := Analyze(f, Config{})
		if err != nil {
			t.Fatal(err)
		}
		refs[f] = ref
	}
	e, err := AnalyzeProgram(funcs, EngineConfig{Parallelism: 8, MaxCached: n / 2})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 12
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 40; iter++ {
				f := funcs[(w*31+iter*13)%len(funcs)]
				qs := allQueries(f)
				if len(qs) > 300 {
					qs = qs[(w*97)%100 : (w*97)%100+300]
				}
				got, err := e.BatchIsLiveIn(f, qs)
				if err != nil {
					errs <- err
					return
				}
				ref := refs[f].NewQuerier()
				for i, q := range qs {
					if got[i] != ref.IsLiveIn(q.V, q.B) {
						errs <- fmt.Errorf("worker %d: %s live-in(%s,%s) mismatch", w, f.Name, q.V, q.B)
						return
					}
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// The engine must notice a CFG edit on its own: the next Liveness request
// sees the stale epochs, rebuilds, counts the rebuild, and answers against
// the edited program — no Invalidate call anywhere.
func TestEngineAutoRebuildAfterCFGEdit(t *testing.T) {
	funcs := engineCorpus(t, 2, 77)
	f := funcs[0]
	e, err := AnalyzeProgram(funcs, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := e.Liveness(f)
	if err != nil {
		t.Fatal(err)
	}
	f.Entry().SplitEdge(0)
	if !before.Stale() {
		t.Fatal("handle should read as stale after a CFG edit")
	}
	after, err := e.Liveness(f)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("engine served the stale analysis after a CFG edit")
	}
	if after.Stale() {
		t.Fatal("rebuilt analysis should be fresh")
	}
	if got := e.Rebuilds(); got != 1 {
		t.Fatalf("Rebuilds = %d, want 1", got)
	}
	// The untouched sibling stays resident and unrebuilt.
	if got := e.Resident(); got != 2 {
		t.Fatalf("Resident = %d, want 2", got)
	}
	ref, err := Analyze(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		f.Values(func(v *ir.Value) {
			if !v.Op.HasResult() {
				return
			}
			if after.IsLiveIn(v, b) != ref.IsLiveIn(v, b) {
				t.Fatalf("rebuilt analysis disagrees with fresh at live-in(%s, %s)", v, b)
			}
		})
	}
}

// Instruction-only edits must NOT trigger engine rebuilds with the
// checker (the paper's property, engine-level), and must trigger exactly
// one with a set-producing backend.
func TestEngineRebuildPolicyPerBackend(t *testing.T) {
	for _, tc := range []struct {
		backend      string
		wantRebuilds int
	}{
		{"", 0}, // checker
		{"dataflow", 1},
	} {
		funcs := engineCorpus(t, 1, 99)
		f := funcs[0]
		e, err := AnalyzeProgram(funcs, EngineConfig{Config: Config{Backend: tc.backend}})
		if err != nil {
			t.Fatal(err)
		}
		before, err := e.Liveness(f)
		if err != nil {
			t.Fatal(err)
		}
		// Instruction edit: a fresh use of some value in its own block.
		var v *ir.Value
		f.Values(func(x *ir.Value) {
			if v == nil && x.Op.HasResult() {
				v = x
			}
		})
		v.Block.NewValue(ir.OpNeg, v)
		after, err := e.Liveness(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Rebuilds(); got != tc.wantRebuilds {
			t.Fatalf("backend %q: Rebuilds = %d after instruction edit, want %d", tc.backend, got, tc.wantRebuilds)
		}
		if (after == before) != (tc.wantRebuilds == 0) {
			t.Fatalf("backend %q: handle identity does not match rebuild expectation", tc.backend)
		}
	}
}

// An analysis error must not outlive the program state it described: once
// the function is edited, the engine retries instead of serving the old
// verdict.
func TestEngineErrorClearedByEdit(t *testing.T) {
	bad := ir.NewFunc("fixme")
	entry := bad.NewBlock(ir.BlockPlain) // plain block with no successor: malformed
	ret := bad.NewBlock(ir.BlockRet)
	e := NewEngine(EngineConfig{})
	e.Add(bad)
	if _, err := e.Liveness(bad); err == nil {
		t.Fatal("malformed function should fail analysis")
	}
	if _, err := e.Liveness(bad); err == nil {
		t.Fatal("failure should persist while the function is unedited")
	}
	entry.AddEdgeTo(ret) // fix it (a CFG edit: epochs move)
	if _, err := e.Liveness(bad); err != nil {
		t.Fatalf("edited-and-fixed function should analyze: %v", err)
	}
}

// Engine.Oracle must keep answering correctly across both edit classes:
// instruction edits are visible with zero rebuilds (checker), CFG edits
// force exactly one transparent rebuild.
func TestEngineOracleTracksEdits(t *testing.T) {
	f := ir.MustParse(`
func @loop(%n) {
entry:
  %zero = const 0
  %one = const 1
  br head
head:
  %i = phi [%zero, entry], [%inext, body]
  %cmp = cmplt %i, %n
  if %cmp -> body, exit
body:
  %inext = add %i, %one
  br head
exit:
  ret %i
}
`)
	e, err := AnalyzeProgram([]*ir.Func{f}, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := e.Oracle(f)
	if err != nil {
		t.Fatal(err)
	}
	one, exit := f.ValueByName("one"), f.BlockByName("exit")
	if oracle.IsLiveIn(one, exit) {
		t.Fatal("unexpected live-in before the edit")
	}
	// Instruction edit: the same precomputation answers, and sees it.
	exit.NewValue(ir.OpAdd, one, one)
	if !oracle.IsLiveIn(one, exit) {
		t.Fatal("oracle should see the new use")
	}
	if got := e.Rebuilds(); got != 0 {
		t.Fatalf("Rebuilds = %d after instruction edit with checker, want 0", got)
	}
	// CFG edit: transparent re-fetch through the engine.
	f.Entry().SplitEdge(0)
	if !oracle.IsLiveIn(one, exit) {
		t.Fatal("oracle should keep answering after the CFG edit")
	}
	if got := e.Rebuilds(); got != 1 {
		t.Fatalf("Rebuilds = %d after CFG edit, want 1", got)
	}
}

// TestEngineSharedBuildSingleFlight checks that concurrent first requests
// for one function share a single Analyze (same returned pointer).
func TestEngineSharedBuildSingleFlight(t *testing.T) {
	f := engineCorpus(t, 1, 31)[0]
	e := NewEngine(EngineConfig{})
	e.Add(f)
	const workers = 8
	results := make([]*Liveness, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			live, err := e.Liveness(f)
			if err != nil {
				t.Error(err)
				return
			}
			results[w] = live
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatal("concurrent first requests built distinct analyses")
		}
	}
}
