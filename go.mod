module fastliveness

go 1.24
