// Sentinel errors and the panic-capture type of the engine's failure
// model. Every error the Engine returns for a structural reason wraps one
// of these sentinels, so callers branch with errors.Is instead of string
// matching; see ARCHITECTURE.md, "Failure model".
package fastliveness

import (
	"errors"
	"fmt"
)

var (
	// ErrUnknownFunc is wrapped by every engine method handed a function
	// that was never registered with Add. Test with
	// errors.Is(err, ErrUnknownFunc).
	ErrUnknownFunc = errors.New("function is not registered with the engine")

	// ErrEngineClosed is wrapped by engine methods called after Shutdown.
	// Close (stop the background workers, keep serving) never produces it;
	// only the terminal Shutdown does.
	ErrEngineClosed = errors.New("engine has been shut down")

	// ErrQuarantined is wrapped by every error the engine reports for a
	// function whose build panicked: the first failing call, the fail-fast
	// calls during the retry backoff, and the fail-fast calls after the
	// retry budget is exhausted. The chain also carries the
	// *BuildPanicError with the captured stack (errors.As). Quarantine
	// ends at the function's next edit — the panic described a program
	// that no longer exists — or when a backoff-paced retry succeeds.
	ErrQuarantined = errors.New("function is quarantined after a panicking build")
)

// BuildPanicError is a backend panic converted into a per-function error
// at the engine's build boundary: the panic value and the goroutine stack
// captured at recovery. The engine quarantines the function (bounded
// backoff-paced retries, then fail-fast until its next edit) instead of
// letting the panic take down the process; rebuild-pool workers likewise
// survive it and keep draining their queue.
type BuildPanicError struct {
	// Func is the function whose build panicked.
	Func string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery (runtime/debug.Stack).
	Stack []byte
}

func (e *BuildPanicError) Error() string {
	return fmt.Sprintf("analysis of %s panicked: %v", e.Func, e.Value)
}

// errUnknownFunc wraps ErrUnknownFunc with the function's name.
func errUnknownFunc(name string) error {
	return fmt.Errorf("fastliveness: %w: %s", ErrUnknownFunc, name)
}

// quarantineErr wraps a panic-derived build error so every caller-facing
// form satisfies both errors.Is(err, ErrQuarantined) and
// errors.As(err, **BuildPanicError).
func quarantineErr(name string, err error) error {
	return fmt.Errorf("fastliveness: %s: %w: %w", name, ErrQuarantined, err)
}
