package fastliveness

// Context-cancellation and lifecycle-sentinel tests: waiters parked on a
// build wake promptly on cancellation, a cancelled builder detaches
// without ever half-caching its result, and the error surface wraps the
// package sentinels.

import (
	"context"
	"errors"
	"testing"
	"time"
)

// recvErr waits for one error with a test deadline.
func recvErr(t *testing.T, what string, ch <-chan error) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return nil
	}
}

// A caller parked on another goroutine's in-flight build must wake and
// return promptly when its context is cancelled, while the build itself
// carries on and serves everyone else.
func TestEngineContextCancelWaiter(t *testing.T) {
	f := engineCorpus(t, 1, 301)[0]
	e := NewEngine(EngineConfig{Config: Config{Backend: "gate"}})
	e.Add(f)

	started, release := gate.Arm()
	builderErr := make(chan error, 1)
	go func() {
		_, err := e.Liveness(f)
		builderErr <- err
	}()
	<-started // the builder is parked inside Analyze

	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := e.LivenessContext(ctx, f)
		waiterErr <- err
	}()
	cancel()
	if err := recvErr(t, "cancelled waiter to return", waiterErr); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}

	release()
	if err := recvErr(t, "builder to finish", builderErr); err != nil {
		t.Fatal(err)
	}
	// The engine is fully usable after the cancellation.
	if _, err := e.Liveness(f); err != nil {
		t.Fatal(err)
	}
}

// A caller that is itself running the build must return promptly on
// cancellation while the build detaches, completes, and publishes — never
// a half-cached result, never wasted work.
func TestEngineContextCancelBuilderDetaches(t *testing.T) {
	f := engineCorpus(t, 1, 302)[0]
	e := NewEngine(EngineConfig{Config: Config{Backend: "gate"}})
	e.Add(f)

	started, release := gate.Arm()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := e.LivenessContext(ctx, f)
		errCh <- err
	}()
	<-started // the detached build is parked inside Analyze
	cancel()
	// The initiating caller returns while the build is still blocked.
	if err := recvErr(t, "cancelled builder to return", errCh); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled builder got %v, want context.Canceled", err)
	}

	// Releasing the gate lets the detached build publish on its own.
	release()
	waitFor(t, "detached build to publish", func() bool { return e.Resident() == 1 })
	if _, err := e.Liveness(f); err != nil {
		t.Fatal(err)
	}
}

// PrecomputeContext returns ctx.Err() promptly when cancelled mid-corpus
// and leaves the engine fully usable: the remaining functions build on
// demand or via a later Precompute.
func TestEnginePrecomputeContextCancel(t *testing.T) {
	funcs := engineCorpus(t, 6, 303)
	e := NewEngine(EngineConfig{Config: Config{Backend: "gate"}, Parallelism: 2})
	e.Add(funcs...)

	started, release := gate.Arm()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- e.PrecomputeContext(ctx) }()
	<-started // one worker is parked inside a build
	cancel()
	if err := recvErr(t, "cancelled precompute to return", errCh); !errors.Is(err, context.Canceled) {
		t.Fatalf("PrecomputeContext returned %v, want context.Canceled", err)
	}
	release()

	// A later full precompute finishes the job.
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	if e.Resident() != len(funcs) {
		t.Fatalf("%d resident analyses after re-precompute, want %d", e.Resident(), len(funcs))
	}
	for _, f := range funcs {
		if _, err := e.Liveness(f); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
}

// Every "not registered" error wraps ErrUnknownFunc, on all entry points.
func TestEngineUnknownFuncSentinel(t *testing.T) {
	known := engineCorpus(t, 2, 304)
	stranger := known[1] // registered nowhere
	e := NewEngine(EngineConfig{})
	e.Add(known[0])

	if _, err := e.Liveness(stranger); !errors.Is(err, ErrUnknownFunc) {
		t.Fatalf("Liveness: %v, want ErrUnknownFunc", err)
	}
	if _, err := e.BatchIsLiveIn(stranger, nil); !errors.Is(err, ErrUnknownFunc) {
		t.Fatalf("BatchIsLiveIn: %v, want ErrUnknownFunc", err)
	}
	if _, err := e.BatchIsLiveOut(stranger, nil); !errors.Is(err, ErrUnknownFunc) {
		t.Fatalf("BatchIsLiveOut: %v, want ErrUnknownFunc", err)
	}
	if _, err := e.Oracle(stranger); !errors.Is(err, ErrUnknownFunc) {
		t.Fatalf("Oracle: %v, want ErrUnknownFunc", err)
	}
}

// Shutdown is terminal: subsequent requests fail fast with
// ErrEngineClosed (unlike Close, which keeps the engine serving), and
// already-handed-out analyses keep answering.
func TestEngineShutdownSentinel(t *testing.T) {
	funcs := engineCorpus(t, 2, 305)
	e := NewEngine(EngineConfig{RebuildWorkers: 1})
	e.Add(funcs...)
	live, err := e.Liveness(funcs[0])
	if err != nil {
		t.Fatal(err)
	}

	e.Shutdown()
	e.Shutdown() // idempotent

	if _, err := e.Liveness(funcs[0]); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Liveness after Shutdown: %v, want ErrEngineClosed", err)
	}
	if _, err := e.Oracle(funcs[1]); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Oracle after Shutdown: %v, want ErrEngineClosed", err)
	}
	if err := e.Precompute(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Precompute after Shutdown: %v, want ErrEngineClosed", err)
	}
	// The analysis handed out before Shutdown still answers.
	qs := allQueries(funcs[0])
	if len(qs) == 0 {
		t.Fatal("empty query set")
	}
	_ = live.IsLiveIn(qs[0].V, qs[0].B)
}

// Shutdown must wake waiters parked on an in-flight build so they observe
// the closed engine instead of sleeping until the build publishes.
func TestEngineShutdownWakesWaiters(t *testing.T) {
	f := engineCorpus(t, 1, 306)[0]
	e := NewEngine(EngineConfig{Config: Config{Backend: "gate"}})
	e.Add(f)

	started, release := gate.Arm()
	builderDone := make(chan error, 1)
	go func() {
		_, err := e.Liveness(f)
		builderDone <- err
	}()
	<-started

	waiterErr := make(chan error, 1)
	go func() {
		_, err := e.Liveness(f)
		waiterErr <- err
	}()
	// The waiter may not have parked yet; either way it must observe the
	// shutdown — parked waiters via the broadcast, new arrivals via the
	// loop's closed check.
	e.Shutdown()
	if err := recvErr(t, "waiter to observe shutdown", waiterErr); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("waiter got %v, want ErrEngineClosed", err)
	}
	release()
	recvErr(t, "builder to finish", builderDone)
}
