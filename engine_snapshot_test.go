package fastliveness

// Disk-tier tests: the snapshot store under the engine LRU must eliminate
// precomputes on warm starts, serve eviction refills from disk, key on CFG
// structure only (instruction edits keep hitting, CFG edits miss), stay
// shard-invariant, and degrade a corrupt store to recomputation — never to
// a wrong answer.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fastliveness/internal/ir"
)

// snapshotDir opens a store over a fresh temp directory.
func snapshotDir(t *testing.T) *SnapshotStore {
	t.Helper()
	ss, err := OpenSnapshotStore(filepath.Join(t.TempDir(), "snap"), 0)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// coldWarm runs the same deterministic corpus through two engine
// lifetimes sharing one store and returns both engines' stats plus the
// answer fingerprints (regenerating the corpus for the warm run, the way a
// second process re-reads the same program from source).
func TestEngineSnapshotWarmStart(t *testing.T) {
	const n = 18
	ss := snapshotDir(t)

	cold := engineCorpus(t, n, 321)
	e1, err := AnalyzeProgram(cold, EngineConfig{Parallelism: 2, RebuildWorkers: 2, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	fp1 := fingerprint(t, e1, cold)
	e1.Close() // drains pending snapshot write-backs
	s1 := e1.SnapshotStats()
	if s1.Hits+s1.Misses != n {
		t.Fatalf("cold run consulted the store %d times, want %d", s1.Hits+s1.Misses, n)
	}
	if s1.Computes != s1.Misses {
		t.Fatalf("cold run: %d computes for %d misses; every miss (and only misses) must compute",
			s1.Computes, s1.Misses)
	}
	if s1.Stores == 0 || ss.Len() == 0 {
		t.Fatalf("cold run left no snapshots behind (stores=%d, files=%d)", s1.Stores, ss.Len())
	}
	if s1.StoredBytes != ss.SizeBytes() {
		t.Fatalf("StoredBytes %d, directory holds %d", s1.StoredBytes, ss.SizeBytes())
	}

	warm := engineCorpus(t, n, 321) // same shapes, fresh IR: a new process
	e2, err := AnalyzeProgram(warm, EngineConfig{Parallelism: 2, RebuildWorkers: 2, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	fp2 := fingerprint(t, e2, warm)
	e2.Close()
	s2 := e2.SnapshotStats()
	if s2.Misses != 0 || s2.Hits != n {
		t.Fatalf("warm run: %d hits, %d misses; want %d/0", s2.Hits, s2.Misses, n)
	}
	if s2.Computes != 0 {
		t.Fatalf("warm run ran %d precomputes on an unchanged corpus, want 0", s2.Computes)
	}
	if e2.Rebuilds() != 0 || e2.BackgroundRebuilds() != 0 {
		t.Fatalf("warm run: %d query-path + %d background rebuilds, want 0/0",
			e2.Rebuilds(), e2.BackgroundRebuilds())
	}
	if s2.LoadedBytes == 0 {
		t.Fatal("warm run loaded 0 bytes")
	}
	if fp1 != fp2 {
		t.Fatal("snapshot-loaded answers differ from freshly computed answers")
	}
}

// Eviction + re-request must be served from disk, not recomputation.
func TestEngineSnapshotEvictionRefillsFromDisk(t *testing.T) {
	const n, maxCached = 12, 4
	ss := snapshotDir(t)
	funcs := engineCorpus(t, n, 555)
	e, err := AnalyzeProgram(funcs, EngineConfig{
		Parallelism: 1, MaxCached: maxCached, SnapshotStore: ss,
	})
	if err != nil {
		t.Fatal(err)
	}
	coldComputes := e.SnapshotStats().Computes
	if r := e.Resident(); r != maxCached {
		t.Fatalf("%d resident after precompute, want %d", r, maxCached)
	}

	fingerprint(t, e, funcs) // sweeps every function: evicted ones refill
	s := e.SnapshotStats()
	if s.Computes != coldComputes {
		t.Fatalf("eviction refills recomputed (%d -> %d computes); want disk serves them",
			coldComputes, s.Computes)
	}
	if refillHits := s.Hits + s.Misses - int64(n); refillHits < int64(n-maxCached) {
		t.Fatalf("only %d store consults beyond the cold pass for ≥ %d refills",
			refillHits, n-maxCached)
	}
}

// The fingerprint contract under the two edit classes: instruction edits
// keep hitting the same snapshot (across engine lifetimes), CFG edits
// change the key and recompute.
func TestEngineSnapshotEditClasses(t *testing.T) {
	ss := snapshotDir(t)
	f := engineCorpus(t, 1, 99)[0]
	e, err := AnalyzeProgram([]*ir.Func{f}, EngineConfig{Parallelism: 1, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	if s := e.SnapshotStats(); s.Misses != 1 || s.Computes != 1 {
		t.Fatalf("cold build: %+v", s)
	}

	// Instruction edit: the checker stays fresh — no rebuild, so the store
	// is not even consulted, and the store's key space is untouched.
	addSomeUse(t, f)
	if _, err := e.Liveness(f); err != nil {
		t.Fatal(err)
	}
	if s := e.SnapshotStats(); s.Hits+s.Misses != 1 || s.Computes != 1 {
		t.Fatalf("instruction edit caused analysis traffic: %+v", s)
	}
	filesBefore := ss.Len()

	// CFG edit: stale → rebuild → new fingerprint → miss + compute + save.
	splitSomeEdge(t, f)
	if _, err := e.Liveness(f); err != nil {
		t.Fatal(err)
	}
	s := e.SnapshotStats()
	if s.Misses != 2 || s.Computes != 2 {
		t.Fatalf("CFG edit did not force a snapshot miss + recompute: %+v", s)
	}
	if ss.Len() != filesBefore+1 {
		t.Fatalf("store holds %d files after CFG edit, want %d", ss.Len(), filesBefore+1)
	}

	// New process, same source, same instruction-only edit: the cold
	// snapshot (saved before any edit) must still hit — the key ignores
	// instructions — and answer identically to a storeless engine.
	f2 := engineCorpus(t, 1, 99)[0]
	addSomeUse(t, f2)
	e2, err := AnalyzeProgram([]*ir.Func{f2}, EngineConfig{Parallelism: 1, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	if s := e2.SnapshotStats(); s.Hits != 1 || s.Computes != 0 {
		t.Fatalf("instruction-edited warm start: %+v, want 1 hit / 0 computes", s)
	}
	f3 := engineCorpus(t, 1, 99)[0]
	addSomeUse(t, f3)
	e3, err := AnalyzeProgram([]*ir.Func{f3}, EngineConfig{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, e2, []*ir.Func{f2}) != fingerprint(t, e3, []*ir.Func{f3}) {
		t.Fatal("snapshot-loaded answers differ from storeless engine after instruction edit")
	}
}

// SnapshotStats and warm-start behavior must be invariant under the shard
// count, like every other observable (engine_shard_test.go discipline).
func TestEngineSnapshotShardInvariance(t *testing.T) {
	type outcome struct {
		cold, warm SnapshotStats
		answers    string
	}
	run := func(t *testing.T, shards int) outcome {
		ss := snapshotDir(t)
		cold := engineCorpus(t, 14, 777)
		e1, err := AnalyzeProgram(cold, EngineConfig{Parallelism: 1, Shards: shards, SnapshotStore: ss})
		if err != nil {
			t.Fatal(err)
		}
		fingerprint(t, e1, cold)
		warm := engineCorpus(t, 14, 777)
		e2, err := AnalyzeProgram(warm, EngineConfig{Parallelism: 1, Shards: shards, SnapshotStore: ss})
		if err != nil {
			t.Fatal(err)
		}
		return outcome{cold: e1.SnapshotStats(), warm: e2.SnapshotStats(), answers: fingerprint(t, e2, warm)}
	}
	base := run(t, 1)
	for _, shards := range []int{4, 16} {
		got := run(t, shards)
		if got != base {
			t.Fatalf("snapshot behavior differs between 1 and %d shards:\n1: %+v\n%d: %+v",
				shards, base, shards, got)
		}
	}
}

// A store full of garbage must cost only recomputation: identical answers,
// misses instead of hits, and — because failed loads unlink the garbage —
// the following run is fully warm again.
func TestEngineSnapshotCorruptStoreDegrades(t *testing.T) {
	const n = 10
	ss := snapshotDir(t)
	cold := engineCorpus(t, n, 888)
	e1, err := AnalyzeProgram(cold, EngineConfig{Parallelism: 1, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, e1, cold)

	entries, err := os.ReadDir(ss.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for i, ent := range entries {
		path := filepath.Join(ss.Dir(), ent.Name())
		if i%2 == 0 {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			buf[len(buf)/3] ^= 0x10 // bit flip
			if err := os.WriteFile(path, buf, 0o666); err != nil {
				t.Fatal(err)
			}
		} else if err := os.Truncate(path, 20); err != nil { // torn write
			t.Fatal(err)
		}
	}

	damaged := engineCorpus(t, n, 888)
	e2, err := AnalyzeProgram(damaged, EngineConfig{Parallelism: 1, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, e2, damaged); got != want {
		t.Fatal("corrupt store changed answers; must only cost recomputation")
	}
	s2 := e2.SnapshotStats()
	if s2.Hits+s2.Misses != n || s2.Computes != s2.Misses || s2.Misses == 0 {
		t.Fatalf("corrupt-store run: %+v", s2)
	}

	healed := engineCorpus(t, n, 888)
	e3, err := AnalyzeProgram(healed, EngineConfig{Parallelism: 1, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	if s3 := e3.SnapshotStats(); s3.Misses != 0 || s3.Computes != 0 {
		t.Fatalf("store did not heal after recompute: %+v", s3)
	}
}

// A store full of old-format files degrades every load to a clean
// version-skew miss — never a wrong answer, never a hard error — and the
// recomputes rewrite the directory in the current format, so the next run
// is fully warm again. This is the v2→v3 migration path; the byte-level
// v2 decode and store behavior is pinned in internal/snapshot, and the CI
// warm-start smoke patches a version byte exactly like this with dd.
func TestEngineSnapshotVersionSkewRewritesStore(t *testing.T) {
	const n = 6
	ss := snapshotDir(t)
	cold := engineCorpus(t, n, 999)
	e1, err := AnalyzeProgram(cold, EngineConfig{Parallelism: 1, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, e1, cold)

	// Stamp every file's version field to 2: the shape of a directory an
	// older process left behind.
	entries, err := os.ReadDir(ss.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("cold run left no snapshots behind")
	}
	for _, ent := range entries {
		path := filepath.Join(ss.Dir(), ent.Name())
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		buf[8] = 2
		if err := os.WriteFile(path, buf, 0o666); err != nil {
			t.Fatal(err)
		}
	}

	skewed := engineCorpus(t, n, 999)
	e2, err := AnalyzeProgram(skewed, EngineConfig{Parallelism: 1, SnapshotStore: ss})
	if err != nil {
		t.Fatalf("version skew must degrade to recompute, not fail: %v", err)
	}
	if got := fingerprint(t, e2, skewed); got != want {
		t.Fatal("version-skewed store changed answers")
	}
	s2 := e2.SnapshotStats()
	if s2.Hits != 0 || s2.Misses != n || s2.Computes != n {
		t.Fatalf("skewed run: %+v, want 0 hits / %d misses / %d computes", s2, n, n)
	}
	if s2.SectionScans != 0 {
		t.Fatalf("version-skewed loads scanned %d sections, want 0 (skew is caught before any payload scan)",
			s2.SectionScans)
	}

	healed := engineCorpus(t, n, 999)
	e3, err := AnalyzeProgram(healed, EngineConfig{Parallelism: 1, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	if s3 := e3.SnapshotStats(); s3.Hits != n || s3.Misses != 0 || s3.Computes != 0 {
		t.Fatalf("store was not rewritten as current-format: %+v", s3)
	}
}

// Steady-state queries against a snapshot-loaded handle allocate nothing,
// same as a freshly computed one (alloc_test.go contract).
func TestEngineSnapshotLoadedQueriesZeroAlloc(t *testing.T) {
	ss := snapshotDir(t)
	cold := engineCorpus(t, 1, 42)
	e1, err := AnalyzeProgram(cold, EngineConfig{Parallelism: 1, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	_ = e1

	warm := engineCorpus(t, 1, 42)
	e2, err := AnalyzeProgram(warm, EngineConfig{Parallelism: 1, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	if s := e2.SnapshotStats(); s.Hits != 1 {
		t.Fatalf("workload was not snapshot-loaded: %+v", s)
	}
	live, err := e2.Liveness(warm[0])
	if err != nil {
		t.Fatal(err)
	}
	f := warm[0]
	var vals []*ir.Value
	f.Values(func(v *ir.Value) {
		if v.Op.HasResult() {
			vals = append(vals, v)
		}
	})
	sweep := func() {
		for _, v := range vals {
			for _, b := range f.Blocks {
				live.IsLiveIn(v, b)
				live.IsLiveOut(v, b)
			}
		}
	}
	sweep() // warm the scratch buffer
	if avg := testing.AllocsPerRun(10, sweep); avg != 0 {
		t.Errorf("snapshot-loaded steady-state sweep: %v allocs, want 0", avg)
	}
}

// Concurrent queries, edits and background rebuilds over a live store —
// run under -race in CI. Answers are validated by construction (Oracle
// re-fetches across edits); the property under test is freedom from data
// races between the save jobs, the rebuild workers and the query paths.
func TestEngineSnapshotConcurrentEditQuery(t *testing.T) {
	ss := snapshotDir(t)
	funcs := engineCorpus(t, 8, 1234)
	e, err := AnalyzeProgram(funcs, EngineConfig{Parallelism: 2, RebuildWorkers: 2, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				f := funcs[(g+iter)%len(funcs)]
				o, err := e.Oracle(f)
				if err != nil {
					continue // racing a CFG edit that momentarily broke analysis
				}
				var v *ir.Value
				f.Values(func(x *ir.Value) {
					if v == nil && x.Op.HasResult() {
						v = x
					}
				})
				for _, b := range f.Blocks[:min(4, len(f.Blocks))] {
					o.IsLiveIn(v, b)
					o.IsLiveOut(v, b)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 12; iter++ {
			f := funcs[iter%len(funcs)]
			e.Edit(f, func() {
				if iter%3 == 0 {
					for _, b := range f.Blocks {
						if len(b.Succs) > 0 {
							b.SplitEdge(0)
							break
						}
					}
				} else {
					var v *ir.Value
					f.Values(func(x *ir.Value) {
						if v == nil && x.Op.HasResult() {
							v = x
						}
					})
					v.Block.NewValue(ir.OpNeg, v)
				}
			})
		}
	}()
	wg.Wait()
}
