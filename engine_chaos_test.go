package fastliveness

// Chaos battery for the engine's failure model: deterministic fault
// injection (internal/faults) drives panicking analyses, failing snapshot
// I/O and slow disks through the real build paths, and every surviving
// answer is validated against a fresh recompute — the failure model may
// degrade performance, never correctness.

import (
	"errors"
	"testing"
	"time"

	"fastliveness/internal/backend"
	"fastliveness/internal/faults"
	"fastliveness/internal/ir"
	"fastliveness/internal/snapshot"
)

// faulty and faultyDF are fault-injectable wrappers around the checker and
// dataflow backends. Registration is global and permanent, so tests re-arm
// them with SetInjector (and disarm in cleanup) instead of re-registering.
var faulty = func() *backend.Faulty {
	inner, err := backend.Get("checker")
	if err != nil {
		panic(err)
	}
	return backend.NewFaulty("faulty", inner)
}()

var faultyDF = func() *backend.Faulty {
	inner, err := backend.Get("dataflow")
	if err != nil {
		panic(err)
	}
	return backend.NewFaulty("faultydf", inner)
}()

// armFaulty arms b with in for the duration of the test.
func armFaulty(t *testing.T, b *backend.Faulty, in *faults.Injector) {
	t.Helper()
	b.SetInjector(in)
	t.Cleanup(func() { b.SetInjector(nil) })
}

// assertMatchesFresh validates every engine answer for f against a fresh
// dataflow recompute — the ground truth the chaos tests hold every
// surviving answer to.
func assertMatchesFresh(t *testing.T, e *Engine, f *ir.Func) {
	t.Helper()
	live, err := e.Liveness(f)
	if err != nil {
		t.Fatalf("%s: %v", f.Name, err)
	}
	truth, err := Analyze(f, Config{Backend: "dataflow"})
	if err != nil {
		t.Fatalf("fresh dataflow recompute of %s: %v", f.Name, err)
	}
	for _, q := range allQueries(f) {
		if got, want := live.IsLiveIn(q.V, q.B), truth.IsLiveIn(q.V, q.B); got != want {
			t.Fatalf("%s: IsLiveIn(%s, %s) = %v, want %v", f.Name, q.V, q.B, got, want)
		}
		if got, want := live.IsLiveOut(q.V, q.B), truth.IsLiveOut(q.V, q.B); got != want {
			t.Fatalf("%s: IsLiveOut(%s, %s) = %v, want %v", f.Name, q.V, q.B, got, want)
		}
	}
}

// A panicking build must quarantine exactly its own function — every other
// function keeps analyzing and answering correctly — and the quarantine
// must end at the function's next edit.
func TestEngineChaosPanicQuarantineIsolation(t *testing.T) {
	funcs := engineCorpus(t, 8, 201)
	victim := funcs[3]
	in := faults.New(1)
	in.Add(faults.Rule{Site: backend.FaultSiteAnalyze + ":" + victim.Name, Action: faults.ActionPanic})
	armFaulty(t, faulty, in)

	// No retries: the first panic quarantines for good (until an edit).
	e := NewEngine(EngineConfig{Config: Config{Backend: "faulty"}, MaxBuildRetries: -1})
	e.Add(funcs...)
	err := e.Precompute()
	if err == nil {
		t.Fatal("Precompute succeeded despite a panicking build")
	}
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Precompute error %v does not wrap ErrQuarantined", err)
	}
	var bp *BuildPanicError
	if !errors.As(err, &bp) {
		t.Fatalf("Precompute error %v carries no *BuildPanicError", err)
	}
	if bp.Func != victim.Name || len(bp.Stack) == 0 {
		t.Fatalf("BuildPanicError{Func: %q, %d stack bytes}, want func %q with a stack", bp.Func, len(bp.Stack), victim.Name)
	}
	if _, ok := bp.Value.(*faults.InjectedPanic); !ok {
		t.Fatalf("panic value %T, want the injected panic", bp.Value)
	}

	// Only the victim is quarantined; everyone else answers correctly.
	for i, f := range funcs {
		if i == 3 {
			continue
		}
		assertMatchesFresh(t, e, f)
	}
	// Repeated requests fail fast without re-running the analysis.
	fired := in.Fired(backend.FaultSiteAnalyze + ":" + victim.Name)
	for i := 0; i < 5; i++ {
		if _, err := e.Liveness(victim); !errors.Is(err, ErrQuarantined) {
			t.Fatalf("call %d: %v, want ErrQuarantined", i, err)
		}
	}
	if got := in.Fired(backend.FaultSiteAnalyze + ":" + victim.Name); got != fired {
		t.Fatalf("fail-fast calls re-ran the analysis: %d fires, want %d", got, fired)
	}

	// An edit ends the quarantine: the panic described a program that no
	// longer exists. Disarm and verify the victim recovers.
	faulty.SetInjector(nil)
	addSomeUse(t, victim)
	assertMatchesFresh(t, e, victim)
}

// With a retry budget, a transiently panicking build recovers on its own:
// backoff-paced retries re-run the analysis until it succeeds.
func TestEngineChaosPanicRetryBackoffRecovers(t *testing.T) {
	funcs := engineCorpus(t, 1, 202)
	f := funcs[0]
	site := backend.FaultSiteAnalyze + ":" + f.Name
	in := faults.New(2)
	in.Add(faults.Rule{Site: site, Action: faults.ActionPanic, Times: 2})
	armFaulty(t, faulty, in)

	e := NewEngine(EngineConfig{Config: Config{Backend: "faulty"}, MaxBuildRetries: 3})
	e.Add(f)
	if _, err := e.Liveness(f); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("first call: %v, want ErrQuarantined", err)
	}
	// Retries are paced by the backoff; poll until one lands and succeeds.
	waitFor(t, "quarantined function to recover via retries", func() bool {
		_, err := e.Liveness(f)
		return err == nil
	})
	if got := in.Fired(site); got != 2 {
		t.Fatalf("injector fired %d times, want exactly the 2 armed panics", got)
	}
	assertMatchesFresh(t, e, f)
}

// A panic inside a rebuild-pool worker must not kill the worker: the
// function is quarantined like on the query path and the pool keeps
// draining its queue.
func TestEngineChaosRebuildWorkerSurvivesPanic(t *testing.T) {
	funcs := engineCorpus(t, 4, 203)
	site := backend.FaultSiteAnalyze + ":" + funcs[0].Name
	in := faults.New(3)
	// Skip the precompute build; panic on the rebuild (the second call).
	in.Add(faults.Rule{Site: site, Action: faults.ActionPanic, After: 1, Times: 1})
	armFaulty(t, faultyDF, in)

	e := NewEngine(EngineConfig{Config: Config{Backend: "faultydf"}, RebuildWorkers: 2})
	defer e.Close()
	e.Add(funcs...)
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	// Stale the victim and let a worker rebuild it: the armed panic fires
	// in the worker, which must recover and keep serving.
	addSomeUse(t, funcs[0])
	e.MarkDirty(funcs[0])
	waitFor(t, "the armed panic to fire", func() bool { return in.Fired(site) == 1 })

	// The pool still works: a rebuild of another function completes.
	before := e.BackgroundRebuilds()
	addSomeUse(t, funcs[1])
	e.MarkDirty(funcs[1])
	waitFor(t, "pool to rebuild after the panic", func() bool {
		return e.BackgroundRebuilds() > before
	})
	// The victim recovers through the backoff-paced retry (the injected
	// panic was one-shot), and every answer matches a fresh recompute.
	waitFor(t, "victim to recover", func() bool {
		_, err := e.Liveness(funcs[0])
		return err == nil
	})
	for _, f := range funcs {
		assertMatchesFresh(t, e, f)
	}
}

// A dead disk opens the snapshot breaker, after which builds stop
// touching the store entirely — zero further disk I/O — and recompute
// from IR with correct answers.
func TestEngineChaosSnapshotBreakerOpensAndSkipsDisk(t *testing.T) {
	ss, err := OpenSnapshotStoreOptions(t.TempDir(), SnapshotStoreOptions{
		BreakerFailures: 3,
		BreakerCooldown: time.Hour, // no half-open probes during this test
	})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(4)
	in.Add(
		faults.Rule{Site: snapshot.FaultSiteLoad, Action: faults.ActionError},
		faults.Rule{Site: snapshot.FaultSiteSave, Action: faults.ActionError},
	)
	ss.store.SetFaultInjector(in)

	funcs := engineCorpus(t, 12, 204)
	// Parallelism 1 makes the admitted-I/O counts exact: build 1 pays one
	// failed load and the save retries until the breaker opens; every
	// later build skips the disk outright.
	e := NewEngine(EngineConfig{SnapshotStore: ss, Parallelism: 1})
	e.Add(funcs...)
	if err := e.Precompute(); err != nil {
		t.Fatalf("disk faults must degrade builds, not fail them: %v", err)
	}
	if got := ss.BreakerState(); got != "open" {
		t.Fatalf("breaker state %q, want open", got)
	}
	stats := e.SnapshotStats()
	if stats.Misses != 12 || stats.Hits != 0 || stats.Stores != 0 {
		t.Fatalf("stats %+v: want 12 misses, 0 hits, 0 stores", stats)
	}
	if stats.BreakerSkips != 11 {
		t.Fatalf("BreakerSkips = %d, want 11 (every build after the first)", stats.BreakerSkips)
	}
	if loads := in.Calls(snapshot.FaultSiteLoad); loads != 1 {
		t.Fatalf("store.Load ran %d times, want 1: an open breaker must mean zero disk reads", loads)
	}
	if saves := in.Calls(snapshot.FaultSiteSave); saves != 2 {
		t.Fatalf("store.Save ran %d times, want 2 (first attempt + one retry before the breaker opened)", saves)
	}
	for _, f := range funcs {
		assertMatchesFresh(t, e, f)
	}
}

// After the cooldown an open breaker admits a single half-open probe
// load; a successful probe closes the breaker and the warm store serves
// hits again.
func TestEngineChaosSnapshotBreakerHalfOpenRestores(t *testing.T) {
	dir := t.TempDir()
	funcs := engineCorpus(t, 1, 205)
	f := funcs[0]

	// Warm the store with a healthy engine.
	warm, err := OpenSnapshotStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e1 := NewEngine(EngineConfig{SnapshotStore: warm})
	e1.Add(f)
	if err := e1.Precompute(); err != nil {
		t.Fatal(err)
	}
	e1.Close() // flush the write-back
	if e1.SnapshotStats().Stores != 1 {
		t.Fatalf("warm-up stored %d snapshots, want 1", e1.SnapshotStats().Stores)
	}

	ss, err := OpenSnapshotStoreOptions(dir, SnapshotStoreOptions{
		BreakerFailures: 1,
		BreakerCooldown: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(5)
	in.Add(faults.Rule{Site: snapshot.FaultSiteLoad, Action: faults.ActionError, Times: 1})
	ss.store.SetFaultInjector(in)

	e2 := NewEngine(EngineConfig{SnapshotStore: ss})
	e2.Add(f)
	if _, err := e2.Liveness(f); err != nil {
		t.Fatal(err)
	}
	if got := ss.BreakerState(); got != "open" {
		t.Fatalf("breaker state %q after the injected load failure, want open", got)
	}

	// Cooldown elapses; the next load runs as the half-open probe, hits
	// the warm file, and closes the breaker.
	time.Sleep(10 * time.Millisecond)
	e2.Invalidate(f)
	if _, err := e2.Liveness(f); err != nil {
		t.Fatal(err)
	}
	if got := ss.BreakerState(); got != "closed" {
		t.Fatalf("breaker state %q after a successful probe, want closed", got)
	}
	stats := e2.SnapshotStats()
	if stats.Hits != 1 || stats.Computes != 1 {
		t.Fatalf("stats %+v: want the probe rebuild served from disk (1 hit, 1 compute)", stats)
	}
	assertMatchesFresh(t, e2, f)
}

// A transiently failing save is retried with backoff and lands on the
// second attempt, so one hiccup does not cost a future process its warm
// start.
func TestEngineChaosSnapshotSaveRetriesTransientError(t *testing.T) {
	ss, err := OpenSnapshotStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(6)
	in.Add(faults.Rule{Site: snapshot.FaultSiteSave, Action: faults.ActionError, Times: 1})
	ss.store.SetFaultInjector(in)

	funcs := engineCorpus(t, 1, 206)
	e := NewEngine(EngineConfig{SnapshotStore: ss})
	e.Add(funcs...)
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	if got := in.Calls(snapshot.FaultSiteSave); got != 2 {
		t.Fatalf("store.Save ran %d times, want 2 (failure + successful retry)", got)
	}
	if stats := e.SnapshotStats(); stats.Stores != 1 {
		t.Fatalf("Stores = %d, want 1: the retry must have landed", stats.Stores)
	}
	if ss.Len() != 1 {
		t.Fatalf("store holds %d snapshots, want 1", ss.Len())
	}
	if got := ss.BreakerState(); got != "closed" {
		t.Fatalf("breaker state %q, want closed (one transient failure is below the threshold)", got)
	}
}

// Randomized fault stress: probabilistic load/save failures and delays
// across a corpus with concurrent queries must never change an answer —
// sharded comparison against fresh dataflow recomputes.
func TestEngineChaosSnapshotFaultStress(t *testing.T) {
	ss, err := OpenSnapshotStoreOptions(t.TempDir(), SnapshotStoreOptions{
		BreakerFailures: 4,
		BreakerCooldown: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(7)
	in.Add(
		faults.Rule{Site: snapshot.FaultSiteLoad, Action: faults.ActionDelay, Delay: 100 * time.Microsecond, P: 0.3},
		faults.Rule{Site: snapshot.FaultSiteLoad, Action: faults.ActionError, P: 0.4},
		faults.Rule{Site: snapshot.FaultSiteSave, Action: faults.ActionError, P: 0.4},
	)
	ss.store.SetFaultInjector(in)

	funcs := engineCorpus(t, 16, 207)
	e := NewEngine(EngineConfig{SnapshotStore: ss, Parallelism: 4, RebuildWorkers: 2})
	defer e.Close()
	e.Add(funcs...)
	if err := e.Precompute(); err != nil {
		t.Fatalf("injected snapshot faults must never fail a build: %v", err)
	}
	// Edit half the corpus (CFG edits, so the checker tier reloads) and
	// re-query everything; every answer must match a fresh recompute.
	for i, f := range funcs {
		if i%2 == 0 {
			e.Edit(f, func() { splitSomeEdge(t, f) })
		}
	}
	for _, f := range funcs {
		assertMatchesFresh(t, e, f)
	}
	stats := e.SnapshotStats()
	if stats.Hits+stats.Misses == 0 {
		t.Fatal("stress run never consulted the snapshot tier")
	}
}
