// Package fastliveness is the public face of this repository: a Go
// implementation of Boissinot, Hack, Grund, Dupont de Dinechin and
// Rastello, "Fast Liveness Checking for SSA-Form Programs" (CGO 2008).
//
// It binds the CFG-only precomputation of internal/core to the SSA IR of
// internal/ir: Analyze precomputes the R and T sets for a function's CFG,
// and IsLiveIn/IsLiveOut answer queries for any variable using nothing but
// that precomputation, the variable's definition block and its def-use
// chain, read fresh at query time.
//
// Consequently — the paper's headline property — adding or removing
// instructions, variables or uses never invalidates an Analyze result;
// only changing the CFG itself (adding/removing blocks or edges) requires
// a new Analyze call. SSA destruction exploits exactly that: it splits
// critical edges once up front, analyzes, and then queries freely while it
// rewrites the program.
//
// Example:
//
//	live, err := fastliveness.Analyze(f, fastliveness.Config{})
//	if err != nil { ... }
//	if live.IsLiveOut(v, b) { ... }
package fastliveness

import (
	"fmt"

	"fastliveness/internal/cfg"
	"fastliveness/internal/core"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
)

// Strategy selects how the T sets are precomputed; see internal/core.
type Strategy = core.Strategy

// Re-exported strategies.
const (
	// StrategyExact evaluates the paper's Definition 5 directly.
	StrategyExact = core.StrategyExact
	// StrategyPropagate is the paper's practical §5.2 scheme (the
	// default).
	StrategyPropagate = core.StrategyPropagate
)

// Config tunes the analysis. The zero value is the paper's configuration.
type Config struct {
	// Strategy selects the T-set precomputation scheme.
	Strategy Strategy
	// NoSkipSubtrees disables the §5.1 dominance-subtree skip (ablation).
	NoSkipSubtrees bool
	// NoReducibleFastPath disables the Theorem 2 single-test fast path
	// (ablation).
	NoReducibleFastPath bool
	// SortedT stores T sets as sorted arrays instead of bitsets (§6.1
	// memory variant).
	SortedT bool
}

// Liveness answers liveness queries for one function. It is bound to the
// function's CFG at Analyze time; see the package comment for what
// invalidates it. Queries are not safe for concurrent use (a scratch
// buffer is reused); create one Liveness per goroutine if needed.
type Liveness struct {
	f       *ir.Func
	graph   *cfg.Graph
	index   []int // block ID -> node
	dfs     *cfg.DFS
	tree    *dom.Tree
	checker *core.Checker
	scratch []int
}

// Analyze precomputes the liveness-checking sets for f's CFG. The function
// must be well formed (ir.Verify) with every block reachable from the
// entry, and queries assume strict SSA (ssa.VerifyStrict); liveness of a
// variable whose definition does not dominate its uses is undefined.
func Analyze(f *ir.Func, config Config) (*Liveness, error) {
	if err := ir.Verify(f); err != nil {
		return nil, err
	}
	g, index := cfg.FromFunc(f)
	d := cfg.NewDFS(g)
	if d.NumReachable != g.N() {
		return nil, fmt.Errorf("fastliveness: %s: %d of %d blocks unreachable from entry",
			f.Name, g.N()-d.NumReachable, g.N())
	}
	tree := dom.Iterative(g, d)
	checker := core.NewFrom(g, d, tree, core.Options{
		Strategy:            config.Strategy,
		NoSkipSubtrees:      config.NoSkipSubtrees,
		NoReducibleFastPath: config.NoReducibleFastPath,
		SortedT:             config.SortedT,
	})
	return &Liveness{
		f:       f,
		graph:   g,
		index:   index,
		dfs:     d,
		tree:    tree,
		checker: checker,
	}, nil
}

// node maps a block to its CFG node, tolerating blocks added after Analyze
// only if the CFG has not changed — which the API contract forbids anyway.
func (l *Liveness) node(b *ir.Block) int {
	if b.ID >= len(l.index) || l.index[b.ID] < 0 {
		panic(fmt.Sprintf("fastliveness: block %s is not part of the analyzed CFG", b))
	}
	return l.index[b.ID]
}

// useNodes reads v's def-use chain (Definition 1 placement) into the
// scratch buffer as CFG nodes.
func (l *Liveness) useNodes(v *ir.Value) []int {
	l.scratch = v.UseBlockIDs(l.scratch[:0])
	for i, id := range l.scratch {
		l.scratch[i] = l.index[id]
	}
	return l.scratch
}

// IsLiveIn reports whether v is live-in at block b (paper Definition 2 /
// Algorithm 3).
func (l *Liveness) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	return l.checker.IsLiveIn(l.node(v.Block), l.useNodes(v), l.node(b))
}

// IsLiveOut reports whether v is live-out at block b (paper Definition 3 /
// Algorithm 2).
func (l *Liveness) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	return l.checker.IsLiveOut(l.node(v.Block), l.useNodes(v), l.node(b))
}

// LiveIn enumerates the variables live-in at b by querying every value —
// the paper deliberately provides only the characteristic function, so
// this convenience costs one query per value. Intended for tools and
// debugging, not for hot paths.
func (l *Liveness) LiveIn(b *ir.Block) []*ir.Value {
	var out []*ir.Value
	l.f.Values(func(v *ir.Value) {
		if v.Op.HasResult() && l.IsLiveIn(v, b) {
			out = append(out, v)
		}
	})
	return out
}

// LiveOut enumerates the variables live-out at b; see LiveIn's caveats.
func (l *Liveness) LiveOut(b *ir.Block) []*ir.Value {
	var out []*ir.Value
	l.f.Values(func(v *ir.Value) {
		if v.Op.HasResult() && l.IsLiveOut(v, b) {
			out = append(out, v)
		}
	})
	return out
}

// Interfere reports whether the live ranges of x and y overlap, using the
// SSA interference test of Budimlić et al. that the paper's evaluation is
// built on (§6.2): order the two values so that x's definition dominates
// y's; they interfere iff x is still live directly after y's definition —
// at block granularity, iff x is live-out of y's block or has a use in it
// at or after y's definition point. Values whose definitions are
// dominance-incomparable never interfere in strict SSA.
//
// This is what register allocators and coalescers (see examples/jitregalloc
// and internal/destruct) ask instead of materializing an interference
// graph.
func (l *Liveness) Interfere(x, y *ir.Value) bool {
	if x == y {
		return false
	}
	bx, by := l.node(x.Block), l.node(y.Block)
	switch {
	case l.tree.Dominates(bx, by):
	case l.tree.Dominates(by, bx):
		x, y = y, x
	default:
		return false
	}
	if x.Block == y.Block && x.Block.ValueIndex(x) > y.Block.ValueIndex(y) {
		x, y = y, x
	}
	if l.IsLiveOut(x, y.Block) {
		return true
	}
	yPos := y.Block.ValueIndex(y)
	for _, u := range x.Uses() {
		switch {
		case u.UserBlock == y.Block:
			return true // control operand: used at the block's end
		case u.User == nil:
			continue
		case u.User.Op == ir.OpPhi:
			if u.User.Block.Preds[u.Index].B == y.Block {
				return true // φ operand: used at this block's end
			}
		case u.User.Block == y.Block && y.Block.ValueIndex(u.User) > yPos:
			return true
		}
	}
	return false
}

// Querier is a lightweight per-goroutine handle onto a Liveness: it shares
// all precomputed sets but owns its scratch buffer, so any number of
// Queriers may run queries concurrently (against an unchanging program).
type Querier struct {
	l       *Liveness
	scratch []int
}

// NewQuerier returns a query handle sharing l's precomputation.
func (l *Liveness) NewQuerier() *Querier { return &Querier{l: l} }

func (qr *Querier) useNodes(v *ir.Value) []int {
	qr.scratch = v.UseBlockIDs(qr.scratch[:0])
	for i, id := range qr.scratch {
		qr.scratch[i] = qr.l.index[id]
	}
	return qr.scratch
}

// IsLiveIn is Liveness.IsLiveIn through this handle's scratch space.
func (qr *Querier) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	l := qr.l
	return l.checker.IsLiveIn(l.node(v.Block), qr.useNodes(v), l.node(b))
}

// IsLiveOut is Liveness.IsLiveOut through this handle's scratch space.
func (qr *Querier) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	l := qr.l
	return l.checker.IsLiveOut(l.node(v.Block), qr.useNodes(v), l.node(b))
}

// Reducible reports whether the function's CFG is reducible; on reducible
// CFGs queries take the Theorem 2 single-test fast path.
func (l *Liveness) Reducible() bool { return l.checker.Reducible() }

// MemoryBytes reports the footprint of the precomputed sets (§6.1).
func (l *Liveness) MemoryBytes() int { return l.checker.MemoryBytes() }

// Func returns the analyzed function.
func (l *Liveness) Func() *ir.Func { return l.f }
