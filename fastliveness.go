// Package fastliveness is the public face of this repository: a Go
// implementation of Boissinot, Hack, Grund, Dupont de Dinechin and
// Rastello, "Fast Liveness Checking for SSA-Form Programs" (CGO 2008).
//
// It binds the CFG-only precomputation of internal/core to the SSA IR of
// internal/ir: Analyze precomputes the R and T sets for a function's CFG,
// and IsLiveIn/IsLiveOut answer queries for any variable using nothing but
// that precomputation, the variable's definition block and its def-use
// chain, read fresh at query time.
//
// Consequently — the paper's headline property — adding or removing
// instructions, variables or uses never invalidates an Analyze result;
// only changing the CFG itself (adding/removing blocks or edges) requires
// a new Analyze call. SSA destruction exploits exactly that: it splits
// critical edges once up front, analyzes, and then queries freely while it
// rewrites the program.
//
// The checker is one of five interchangeable engines behind the
// internal/backend registry (the others are the baselines of the paper's
// evaluation: iterative data-flow, the LAO-style native solver, the
// per-variable walker and the loop-forest engine). Config.Backend selects
// one by name; "auto" picks per function.
//
// Example:
//
//	live, err := fastliveness.Analyze(f, fastliveness.Config{})
//	if err != nil { ... }
//	if live.IsLiveOut(v, b) { ... }
package fastliveness

import (
	"sync"
	"sync/atomic"

	"fastliveness/internal/backend"
	"fastliveness/internal/bitset"
	"fastliveness/internal/core"
	"fastliveness/internal/ir"
)

// Strategy selects how the T sets are precomputed; see internal/core.
type Strategy = core.Strategy

// Re-exported strategies.
const (
	// StrategyExact evaluates the paper's Definition 5 directly.
	StrategyExact = core.StrategyExact
	// StrategyPropagate is the paper's practical §5.2 scheme (the
	// default).
	StrategyPropagate = core.StrategyPropagate
)

// Config tunes the analysis. The zero value is the paper's configuration.
type Config struct {
	// Strategy selects the T-set precomputation scheme.
	Strategy Strategy
	// NoSkipSubtrees disables the §5.1 dominance-subtree skip (ablation).
	NoSkipSubtrees bool
	// NoReducibleFastPath disables the Theorem 2 single-test fast path
	// (ablation).
	NoReducibleFastPath bool
	// SortedT stores T sets as sorted arrays instead of bitsets (§6.1
	// memory variant).
	SortedT bool
	// CacheUses opts checker-backed queries into cached per-variable
	// use-sets: the first query for a value numbers its uses into a bitset
	// over dominance preorder numbers, and every later query answers with
	// a single word-loop intersection R_t ∩ uses(a) instead of re-walking
	// the def-use chain. Steady-state queries allocate nothing.
	//
	// Cache invalidation rides the IR's instruction epoch
	// (ir.Func.InstrEpoch): a cached entry is keyed by the epoch it was
	// built at, so any instruction edit makes every handle's entries lazily
	// rebuild on next query — answers track edits automatically, matching
	// the default fresh-read path. The residual trade-off against the
	// default is rebuild cost under churn: an edit flushes all entries,
	// so edit-heavy query streams re-pay the cache fill, where the
	// fresh-read path pays nothing. Ignored by non-checker backends.
	CacheUses bool
	// Backend names the liveness engine serving the queries: one of
	// Backends() — "checker" (the paper's R/T checker, the default),
	// "dataflow", "lao", "pervar", "loops", or "auto" (per-function
	// adaptive selection). The empty string means "checker". The fields
	// above tune the checker and are ignored by the other backends.
	//
	// Every backend answers queries identically (the differential suite
	// proves it); they differ in precompute cost, memory, and what
	// invalidates them — set-producing backends are invalidated by any
	// program edit, the checker only by CFG changes.
	Backend string
	// SkipVerify skips the structural verifier (ir.Verify) at the head of
	// Analyze. The caller then warrants the function is well formed; a
	// malformed function yields undefined answers instead of an error. Set
	// it when the IR was already verified — a frontend that validates its
	// output, or a benchmark isolating analysis cost. The Engine manages
	// this itself: it verifies each function once per edit epoch and skips
	// re-verification on eviction refills, snapshot restores, and
	// background rebuilds, so engine builds never pay the verifier twice
	// for the same IR.
	SkipVerify bool
}

// Backends lists the registered backend names accepted by Config.Backend.
func Backends() []string { return backend.Names() }

// Liveness answers liveness queries for one function. It is bound to the
// function's CFG at Analyze time; see the package comment for what
// invalidates it. Queries are not safe for concurrent use (a scratch
// buffer is reused); create one Liveness per goroutine if needed.
type Liveness struct {
	f       *ir.Func
	prep    *backend.Prep
	res     backend.Result
	checker *core.Checker // non-nil iff the checker serves the queries
	scratch []int
	// cacheUses routes checker queries through uc (Config.CacheUses).
	cacheUses bool
	// flushes counts manual ResetSets calls. The use-set caches are
	// versioned by f.InstrEpoch() + flushes: any instruction edit — or an
	// explicit ResetSets — lazily flushes every handle's cache (this
	// Liveness's uc and each Querier's). Atomic because ResetSets on the
	// owning handle must be visible to concurrently reading Queriers.
	flushes atomic.Uint64
	uc      useCache
	// enum is the lazily built set-producing result behind LiveIn/LiveOut;
	// enumStale (set by ResetSets) forces the rebuild through a fresh set
	// analysis even when res itself materializes sets. enumMu guards both:
	// an Engine reports MemoryBytes concurrently with the handle owner's
	// first enumeration, so this corner of the otherwise single-goroutine
	// Liveness must synchronize.
	enumMu    sync.Mutex
	enum      backend.Result
	enumStale bool
}

// Analyze precomputes liveness for f with the backend named by the config
// (the paper's R/T checker unless Config.Backend says otherwise). The
// function must be well formed (ir.Verify) with every block reachable from
// the entry, and queries assume strict SSA (ssa.VerifyStrict); liveness of
// a variable whose definition does not dominate its uses is undefined.
func Analyze(f *ir.Func, config Config) (*Liveness, error) {
	var prep *backend.Prep
	var err error
	if config.SkipVerify {
		prep, err = backend.PrepareUnverified(f)
	} else {
		prep, err = backend.Prepare(f)
	}
	if err != nil {
		return nil, err
	}
	var res backend.Result
	switch config.Backend {
	case "", backend.DefaultName:
		// The checker honors the strategy/ablation knobs; going through
		// the registry would lose them.
		res = backend.NewCheckerResult(prep, config.coreOptions())
	default:
		b, err := backend.Get(config.Backend)
		if err != nil {
			return nil, err
		}
		if res, err = backend.AnalyzeWith(b, f, prep); err != nil {
			return nil, err
		}
	}
	l := &Liveness{f: f, prep: prep, res: res}
	if cr, ok := res.(*backend.CheckerResult); ok {
		// Route queries through this handle's own scratch (and the
		// Querier's), never the shared result's.
		l.checker = cr.Checker()
		l.cacheUses = config.CacheUses
	}
	return l, nil
}

// useCache memoizes one bitset of use positions per value ID for the
// checker's set query path (Config.CacheUses). A cache belongs to exactly
// one query handle — the Liveness or one Querier — so reads and writes
// need no locking; staleness is detected per entry through the function's
// instruction epoch (plus the manual-flush counter), and a stale entry's
// bitset is refilled in place rather than reallocated. Instruction edits
// thereby invalidate cached use-sets automatically — no reset call in the
// edit-then-query path.
type useCache struct {
	sets   []*bitset.Set // by value ID
	stamps []uint64      // sets[i] is current iff stamps[i] == instrEpoch+flushes+1
}

// get returns the cached use-set for v, building it on first request per
// epoch (the only allocating step; repeats are allocation-free). scratch
// is the owning handle's node buffer.
func (uc *useCache) get(l *Liveness, scratch *[]int, v *ir.Value) *bitset.Set {
	// Stamps record epoch+1 so the zero value means "never built" even at
	// epoch 0. Both summands only grow, so a stamp can never read as
	// current after either an edit or a flush.
	want := l.f.InstrEpoch() + l.flushes.Load() + 1
	if v.ID >= len(uc.sets) {
		n := v.ID + 1
		if n < 2*len(uc.sets) {
			n = 2 * len(uc.sets) // amortize in-ID-order warmup sweeps
		}
		sets := make([]*bitset.Set, n)
		copy(sets, uc.sets)
		uc.sets = sets
		stamps := make([]uint64, n)
		copy(stamps, uc.stamps)
		uc.stamps = stamps
	}
	if uc.stamps[v.ID] == want {
		return uc.sets[v.ID]
	}
	*scratch = l.prep.UseNodes(*scratch, v)
	s := l.checker.UseSet(uc.sets[v.ID], *scratch)
	uc.sets[v.ID] = s
	uc.stamps[v.ID] = want
	return s
}

// node maps a block to its CFG node, tolerating blocks added after Analyze
// only if the CFG has not changed — which the API contract forbids anyway.
func (l *Liveness) node(b *ir.Block) int { return l.prep.Node(b) }

// useNodes reads v's def-use chain (Definition 1 placement) into the
// scratch buffer as CFG nodes.
func (l *Liveness) useNodes(v *ir.Value) []int {
	l.scratch = l.prep.UseNodes(l.scratch, v)
	return l.scratch
}

// IsLiveIn reports whether v is live-in at block b (paper Definition 2 /
// Algorithm 3).
func (l *Liveness) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	if l.checker != nil {
		if l.cacheUses {
			return l.checker.IsLiveInSet(l.node(v.Block), l.uc.get(l, &l.scratch, v), l.node(b))
		}
		return l.checker.IsLiveIn(l.node(v.Block), l.useNodes(v), l.node(b))
	}
	return l.res.IsLiveIn(v, b)
}

// IsLiveOut reports whether v is live-out at block b (paper Definition 3 /
// Algorithm 2).
func (l *Liveness) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	if l.checker != nil {
		if l.cacheUses {
			return l.checker.IsLiveOutSet(l.node(v.Block), l.uc.get(l, &l.scratch, v), l.node(b))
		}
		return l.checker.IsLiveOut(l.node(v.Block), l.useNodes(v), l.node(b))
	}
	return l.res.IsLiveOut(v, b)
}

// sets returns the set-producing result behind LiveIn/LiveOut: the
// analysis itself when it already materializes sets (and is still fresh),
// else the cheapest set-producing backend for this CFG (loop-forest where
// reducible, iterative data-flow otherwise), built once and cached until
// the function's epochs say it is stale — enumeration after an
// instruction edit transparently re-analyzes, no ResetSets required.
func (l *Liveness) sets() backend.Result {
	l.enumMu.Lock()
	if l.enum != nil && backend.Stale(l.enum, l.f) {
		// The cached enumeration describes an earlier epoch; rebuild.
		l.enum = nil
		l.enumStale = true
	}
	enum, stale := l.enum, l.enumStale
	l.enumMu.Unlock()
	if enum != nil {
		return enum
	}
	// A rebuild reuses the CFG preparation from Analyze time, which is
	// only sound while the CFG is unchanged. A CFG edit therefore fails
	// closed here rather than certifying sets computed over a dead CFG as
	// fresh — the same contract as every query path, but checked.
	if l.f.CFGEpoch() != l.res.Epochs().CFG {
		panic("fastliveness: LiveIn/LiveOut after a CFG edit: the analysis no longer describes " +
			l.f.Name + "; re-Analyze, or hold the handle through an Engine, which rebuilds automatically")
	}
	// Build outside the lock: enumMu only guards the pointer, so an Engine
	// reporting MemoryBytes never stalls behind a set analysis in flight.
	if !stale && l.res.Invalidation() == backend.InvalidatedByAnyEdit && !backend.Stale(l.res, l.f) {
		enum = l.res
	} else {
		e, err := backend.AnalyzeSets(l.f, l.prep)
		if err != nil {
			// The prep is already built and verified; set engines cannot
			// fail on it.
			panic("fastliveness: set enumeration backend: " + err.Error())
		}
		enum = e
	}
	l.enumMu.Lock()
	if l.enum == nil {
		l.enum = enum
	} else {
		enum = l.enum
	}
	l.enumMu.Unlock()
	return enum
}

// LiveIn enumerates the variables live-in at b. It delegates to a
// set-producing backend (built lazily on first call and cached) instead of
// issuing one checker query per value. The cached sets are keyed by the
// function's edit epochs: enumeration after an instruction edit rebuilds
// them transparently, so the answers always describe the current program.
// A CFG edit still requires a re-Analyze, as for every query path — a
// rebuild attempted across one panics instead of answering from the dead
// CFG.
func (l *Liveness) LiveIn(b *ir.Block) []*ir.Value { return l.sets().LiveInSet(b) }

// LiveOut enumerates the variables live-out at b; see LiveIn.
func (l *Liveness) LiveOut(b *ir.Block) []*ir.Value { return l.sets().LiveOutSet(b) }

// ResetSets eagerly drops every derived cache: the enumeration sets behind
// LiveIn/LiveOut and — when Config.CacheUses is on — the per-variable
// use-sets of this handle and of every Querier, via a flush-counter bump.
//
// Since edit tracking moved into the IR (ir.Func.InstrEpoch), both caches
// detect instruction edits on their own and rebuild lazily, so ResetSets
// is never required for correctness; it survives as an explicit
// cache-drop for callers that want to release or rebuild derived state at
// a moment of their choosing. With a set-producing Config.Backend the
// primary query path also describes the pre-edit program, and Stale/
// re-Analyze (or the Engine's automatic rebuild) refreshes it.
func (l *Liveness) ResetSets() {
	l.enumMu.Lock()
	l.enum = nil
	l.enumStale = true
	l.enumMu.Unlock()
	l.flushes.Add(1)
}

// Stale reports whether this analysis no longer describes its function,
// per the backend's invalidation class: any CFG edit since Analyze stales
// every backend, an instruction edit only the set-producing ones — the
// checker handle stays fresh, the paper's §4 property as a runtime check.
// The Engine uses this to rebuild exactly the analyses that edits actually
// killed.
func (l *Liveness) Stale() bool { return backend.Stale(l.res, l.f) }

// Interfere reports whether the live ranges of x and y overlap, using the
// SSA interference test of Budimlić et al. that the paper's evaluation is
// built on (§6.2): order the two values so that x's definition dominates
// y's; they interfere iff x is still live directly after y's definition —
// at block granularity, iff x is live-out of y's block or has a use in it
// at or after y's definition point. Values whose definitions are
// dominance-incomparable never interfere in strict SSA.
//
// This is what register allocators and coalescers (see examples/jitregalloc
// and internal/destruct) ask instead of materializing an interference
// graph. Like the query methods it reuses this handle's scratch buffer;
// concurrent callers use Querier.Interfere.
func (l *Liveness) Interfere(x, y *ir.Value) bool {
	return l.interfere(x, y, l.IsLiveOut)
}

// interfere is the backend-independent Budimlić test, parameterized over
// the live-out oracle so Liveness and Querier each route it through their
// own scratch space.
func (l *Liveness) interfere(x, y *ir.Value, isLiveOut func(*ir.Value, *ir.Block) bool) bool {
	if x == y {
		return false
	}
	bx, by := l.node(x.Block), l.node(y.Block)
	switch {
	case l.prep.Tree.Dominates(bx, by):
	case l.prep.Tree.Dominates(by, bx):
		x, y = y, x
	default:
		return false
	}
	if x.Block == y.Block && x.Block.ValueIndex(x) > y.Block.ValueIndex(y) {
		x, y = y, x
	}
	if isLiveOut(x, y.Block) {
		return true
	}
	yPos := y.Block.ValueIndex(y)
	for _, u := range x.Uses() {
		switch {
		case u.UserBlock == y.Block:
			return true // control operand: used at the block's end
		case u.User == nil:
			continue
		case u.User.Op == ir.OpPhi:
			if u.User.Block.Preds[u.Index].B == y.Block {
				return true // φ operand: used at this block's end
			}
		case u.User.Block == y.Block && y.Block.ValueIndex(u.User) > yPos:
			return true
		}
	}
	return false
}

// Querier is a lightweight per-goroutine handle onto a Liveness: it shares
// all precomputed sets but owns its scratch buffer, so any number of
// Queriers may run queries concurrently (against an unchanging program).
type Querier struct {
	l       *Liveness
	scratch []int
	uc      useCache // this handle's use-set cache (Config.CacheUses)
}

// NewQuerier returns a query handle sharing l's precomputation.
func (l *Liveness) NewQuerier() *Querier { return &Querier{l: l} }

func (qr *Querier) useNodes(v *ir.Value) []int {
	qr.scratch = qr.l.prep.UseNodes(qr.scratch, v)
	return qr.scratch
}

// IsLiveIn is Liveness.IsLiveIn through this handle's scratch space (and,
// with Config.CacheUses, its own use-set cache).
func (qr *Querier) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	l := qr.l
	if l.checker != nil {
		if l.cacheUses {
			return l.checker.IsLiveInSet(l.node(v.Block), qr.uc.get(l, &qr.scratch, v), l.node(b))
		}
		return l.checker.IsLiveIn(l.node(v.Block), qr.useNodes(v), l.node(b))
	}
	return l.res.IsLiveIn(v, b)
}

// IsLiveOut is Liveness.IsLiveOut through this handle's scratch space.
func (qr *Querier) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	l := qr.l
	if l.checker != nil {
		if l.cacheUses {
			return l.checker.IsLiveOutSet(l.node(v.Block), qr.uc.get(l, &qr.scratch, v), l.node(b))
		}
		return l.checker.IsLiveOut(l.node(v.Block), qr.useNodes(v), l.node(b))
	}
	return l.res.IsLiveOut(v, b)
}

// Interfere is Liveness.Interfere through this handle's scratch space:
// interference queries issue IsLiveOut internally, so routing them through
// the shared Liveness would race concurrent Queriers on its scratch
// buffer. Through this method they are safe to run from any number of
// goroutines.
func (qr *Querier) Interfere(x, y *ir.Value) bool {
	return qr.l.interfere(x, y, qr.IsLiveOut)
}

// Reducible reports whether the function's CFG is reducible; on reducible
// CFGs checker queries take the Theorem 2 single-test fast path.
func (l *Liveness) Reducible() bool {
	if l.checker != nil {
		return l.checker.Reducible()
	}
	return l.prep.Reducible()
}

// MemoryBytes reports the footprint of the precomputed sets (§6.1),
// including the enumeration sets LiveIn/LiveOut may have materialized on
// top of the primary analysis.
func (l *Liveness) MemoryBytes() int {
	total := l.res.MemoryBytes()
	l.enumMu.Lock()
	if l.enum != nil && l.enum != l.res {
		total += l.enum.MemoryBytes()
	}
	l.enumMu.Unlock()
	return total
}

// Backend names the backend serving this handle's queries. With
// Config.Backend "auto" this is the engine the selector picked.
func (l *Liveness) Backend() string { return l.res.Backend() }

// SurvivesInstructionEdits reports whether this handle's precomputation
// stays valid across instruction-only edits — the paper's headline
// property, true for the checker (only CFG changes invalidate it), false
// for set-producing backends (any edit invalidates their materialized
// sets). Clients that edit while querying — the register allocator's
// spill loop, SSA destruction — use it to decide whether a re-analysis is
// needed between rounds.
func (l *Liveness) SurvivesInstructionEdits() bool {
	return l.res.Invalidation() == backend.InvalidatedByCFGChanges
}

// Func returns the analyzed function.
func (l *Liveness) Func() *ir.Func { return l.f }
