package fastliveness

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"fastliveness/internal/ir"
)

const backendLoopSrc = `
func @loop(%n) {
entry:
  %zero = const 0
  %one = const 1
  br head
head:
  %i = phi [%zero, entry], [%inext, body]
  %cmp = cmplt %i, %n
  if %cmp -> body, exit
body:
  %inext = add %i, %one
  br head
exit:
  ret %i
}
`

const backendIrrSrc = `
func @irr(%p) {
entry:
  %c = cmplt %p, %p
  if %c -> a, b
a:
  %x = add %p, %p
  br b
b:
  %y = add %p, %c
  if %y -> a, exit
exit:
  ret %p
}
`

// Config.Backend must select each registered backend by name, and every
// backend must answer identically to the default checker.
func TestConfigBackendSelection(t *testing.T) {
	f := ir.MustParse(backendLoopSrc)
	ref, err := Analyze(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Backend() != "checker" {
		t.Fatalf("default backend = %q, want checker", ref.Backend())
	}
	for _, name := range Backends() {
		live, err := Analyze(f, Config{Backend: name})
		if err != nil {
			t.Fatalf("backend %s: %v", name, err)
		}
		f.Values(func(v *ir.Value) {
			if !v.Op.HasResult() {
				return
			}
			for _, b := range f.Blocks {
				if live.IsLiveIn(v, b) != ref.IsLiveIn(v, b) ||
					live.IsLiveOut(v, b) != ref.IsLiveOut(v, b) {
					t.Fatalf("backend %s disagrees with checker at (%s, %s)", name, v, b)
				}
			}
		})
	}
	if _, err := Analyze(f, Config{Backend: "frobnicate"}); err == nil {
		t.Fatal("unknown backend name should fail Analyze")
	}
}

// On irreducible CFGs the loops backend fails loudly while auto silently
// falls back to the checker.
func TestConfigBackendIrreducible(t *testing.T) {
	f := ir.MustParse(backendIrrSrc)
	if _, err := Analyze(f, Config{Backend: "loops"}); err == nil {
		t.Fatal("loops backend should reject an irreducible CFG")
	}
	live, err := Analyze(f, Config{Backend: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if live.Backend() != "checker" {
		t.Fatalf("auto on irreducible CFG picked %q, want checker", live.Backend())
	}
	if live.Reducible() {
		t.Fatal("Reducible() should be false for the irreducible test program")
	}
}

// LiveIn/LiveOut enumeration delegates to a set-producing backend; the
// result must hold exactly the values the per-value queries accept, on
// reducible (loop-forest sets) and irreducible (data-flow sets) CFGs alike.
func TestEnumerationMatchesQueries(t *testing.T) {
	for _, src := range []string{backendLoopSrc, backendIrrSrc} {
		f := ir.MustParse(src)
		live, err := Analyze(f, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range f.Blocks {
			in := make(map[*ir.Value]bool)
			for _, v := range live.LiveIn(b) {
				in[v] = true
			}
			out := make(map[*ir.Value]bool)
			for _, v := range live.LiveOut(b) {
				out[v] = true
			}
			f.Values(func(v *ir.Value) {
				if !v.Op.HasResult() {
					return
				}
				if in[v] != live.IsLiveIn(v, b) {
					t.Fatalf("%s: LiveIn(%s) and IsLiveIn(%s) disagree", f.Name, b, v)
				}
				if out[v] != live.IsLiveOut(v, b) {
					t.Fatalf("%s: LiveOut(%s) and IsLiveOut(%s) disagree", f.Name, b, v)
				}
			})
		}
	}
}

// The enumeration sets are cached, but keyed by the function's edit
// epochs: after an instruction edit the next LiveIn/LiveOut call must
// rebuild them transparently — no ResetSets — while checker queries track
// the edit with no rebuild at all.
func TestEnumerationTracksInstructionEdits(t *testing.T) {
	f := ir.MustParse(backendLoopSrc)
	live, err := Analyze(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	one := f.ValueByName("one")
	exit := f.BlockByName("exit")
	inExit := func(vs []*ir.Value) bool {
		for _, v := range vs {
			if v == one {
				return true
			}
		}
		return false
	}
	if inExit(live.LiveIn(exit)) {
		t.Fatal("the constant one should not be live-in at exit before the edit")
	}
	// Instruction-only edit: a new use of %one inside exit. The checker's
	// precomputation survives it (the paper's headline property)...
	added := exit.NewValue(ir.OpAdd, one, one)
	if live.Stale() {
		t.Fatal("an instruction edit must not stale the checker analysis")
	}
	if !live.IsLiveIn(one, exit) {
		t.Fatal("checker query should see the new use without re-analyzing")
	}
	// ...and the enumeration cache notices the epoch moved and rebuilds on
	// its own.
	if !inExit(live.LiveIn(exit)) {
		t.Fatal("enumeration should track the instruction edit automatically")
	}
	// Reverting the edit moves the epoch again; enumeration follows.
	exit.RemoveValue(added)
	if inExit(live.LiveIn(exit)) {
		t.Fatal("enumeration should track the reverting edit too")
	}
	// ResetSets survives as an explicit eager drop and must stay coherent.
	live.ResetSets()
	if inExit(live.LiveIn(exit)) {
		t.Fatal("enumeration after ResetSets should match the current program")
	}
}

// Automatic rebuild must also fire when the primary backend itself
// materializes sets (loops/dataflow/...): there the enumeration is served
// by the analysis result, and only a fresh set analysis can track an
// edit. The primary query path of such a backend is stale after the edit
// — Stale must say so.
func TestEnumerationTracksEditsWithSetProducingBackend(t *testing.T) {
	f := ir.MustParse(backendLoopSrc)
	live, err := Analyze(f, Config{Backend: "loops"})
	if err != nil {
		t.Fatal(err)
	}
	one := f.ValueByName("one")
	exit := f.BlockByName("exit")
	inExit := func(vs []*ir.Value) bool {
		for _, v := range vs {
			if v == one {
				return true
			}
		}
		return false
	}
	if inExit(live.LiveIn(exit)) {
		t.Fatal("the constant one should not be live-in at exit before the edit")
	}
	if live.Stale() {
		t.Fatal("freshly analyzed handle should not be stale")
	}
	exit.NewValue(ir.OpAdd, one, one)
	if !live.Stale() {
		t.Fatal("an instruction edit must stale a set-producing analysis")
	}
	if !inExit(live.LiveIn(exit)) {
		t.Fatal("enumeration should rebuild against the edited program automatically")
	}
}

// Enumeration across a CFG edit must fail closed: the cached sets and
// the analysis's CFG preparation both describe a CFG that no longer
// exists, and a silent rebuild from them would stamp wrong answers as
// fresh. (Engine-held handles never hit this: the engine rebuilds the
// whole analysis first.)
func TestEnumerationFailsClosedOnCFGEdit(t *testing.T) {
	f := ir.MustParse(backendLoopSrc)
	live, err := Analyze(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	exit := f.BlockByName("exit")
	live.LiveIn(exit) // cache the enumeration
	f.Entry().SplitEdge(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("LiveIn after a CFG edit should panic instead of answering from the dead CFG")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "CFG edit") {
			t.Fatalf("panic %v does not name the CFG edit", r)
		}
	}()
	live.LiveIn(exit)
}

// Querier.Interfere must agree with Liveness.Interfere and be safe for
// concurrent use (the shared-scratch hazard this satellite fixes; the race
// detector checks safety).
func TestQuerierInterfereConcurrent(t *testing.T) {
	f := ir.MustParse(backendLoopSrc)
	live, err := Analyze(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var values []*ir.Value
	f.Values(func(v *ir.Value) {
		if v.Op.HasResult() {
			values = append(values, v)
		}
	})
	type pair struct{ x, y *ir.Value }
	rng := rand.New(rand.NewSource(42))
	pairs := make([]pair, 512)
	want := make([]bool, len(pairs))
	for i := range pairs {
		pairs[i] = pair{values[rng.Intn(len(values))], values[rng.Intn(len(values))]}
		want[i] = live.Interfere(pairs[i].x, pairs[i].y)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qr := live.NewQuerier()
			for i, p := range pairs {
				if got := qr.Interfere(p.x, p.y); got != want[i] {
					t.Errorf("Querier.Interfere(%s, %s) = %v, want %v", p.x, p.y, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Engine.MemoryBytes and Stats are documented concurrent-safe even while a
// handle owner triggers the lazy first enumeration; the race detector
// checks the synchronization on the cached enumeration result.
func TestEngineMemoryConcurrentWithEnumeration(t *testing.T) {
	funcs := []*ir.Func{ir.MustParse(backendLoopSrc), ir.MustParse(backendIrrSrc)}
	eng, err := AnalyzeProgram(funcs, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, f := range funcs {
		live, err := eng.Liveness(f)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			for _, b := range live.Func().Blocks {
				live.LiveIn(b)
				live.LiveOut(b)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				eng.MemoryBytes()
				eng.Stats()
			}
		}()
	}
	wg.Wait()
}

// Engine.Stats must report the per-backend selection mix: with "auto", a
// program mixing reducible and irreducible functions lands on both the
// loops and checker engines.
func TestEngineStatsReportsSelectionMix(t *testing.T) {
	funcs := []*ir.Func{ir.MustParse(backendLoopSrc), ir.MustParse(backendIrrSrc)}
	eng, err := AnalyzeProgram(funcs, EngineConfig{Config: Config{Backend: "auto"}})
	if err != nil {
		t.Fatal(err)
	}
	stats := eng.Stats()
	if stats["loops"].Funcs != 1 || stats["checker"].Funcs != 1 {
		t.Fatalf("Stats() = %+v, want one loops and one checker analysis", stats)
	}
	for name, s := range stats {
		if s.MemoryBytes <= 0 {
			t.Errorf("backend %s reports %d memory bytes", name, s.MemoryBytes)
		}
	}
}
