// Benchmarks regenerating the paper's evaluation (§6), one family per table
// or figure, plus the ablations DESIGN.md calls out. cmd/benchtables
// produces the paper-formatted tables; these testing.B entry points measure
// the same primitives under the standard Go harness:
//
//	BenchmarkTable2_*        — Table 2's four measured quantities
//	BenchmarkFigure3_*       — the worked example's queries
//	BenchmarkScaling_*       — the §6.1/§8 quadratic-precomputation series
//	BenchmarkQueryVsUses_*   — §6.1: query cost tracks def-use chain length
//	BenchmarkAblation*       — §4.1/§5.1/Thm. 2/§6.1 design choices
//	BenchmarkLiveSets_*      — extension E1: full-set engines compared
package fastliveness_test

import (
	"fmt"
	"sync"
	"testing"

	"fastliveness"
	"fastliveness/internal/bench"
	"fastliveness/internal/cfg"
	"fastliveness/internal/core"
	"fastliveness/internal/dataflow"
	"fastliveness/internal/destruct"
	"fastliveness/internal/dom"
	"fastliveness/internal/gen"
	"fastliveness/internal/graphgen"
	"fastliveness/internal/ir"
	"fastliveness/internal/lao"
	"fastliveness/internal/loops"
	"fastliveness/internal/ssa"

	"math/rand"
)

// ---- shared corpus samples (built once) ----

var (
	corpusOnce sync.Once
	corpora    map[string]*bench.Corpus
)

func corpus(b *testing.B, name string) *bench.Corpus {
	b.Helper()
	corpusOnce.Do(func() {
		corpora = map[string]*bench.Corpus{}
		for _, n := range []string{"164.gzip", "186.crafty"} {
			corpora[n] = bench.BuildCorpus(gen.SpecByName(n), 25)
		}
	})
	c := corpora[name]
	if c == nil {
		b.Fatalf("no corpus %q", name)
	}
	return c
}

// ---- Table 2: precomputation ----

func BenchmarkTable2_PrecomputeNative(b *testing.B) {
	for _, name := range []string{"164.gzip", "186.crafty"} {
		b.Run(name, func(b *testing.B) {
			procs := corpus(b, name).Procs
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lao.Analyze(procs[i%len(procs)].F, lao.Options{PhiRelatedOnly: true})
			}
		})
	}
}

func BenchmarkTable2_PrecomputeNew(b *testing.B) {
	for _, name := range []string{"164.gzip", "186.crafty"} {
		b.Run(name, func(b *testing.B) {
			procs := corpus(b, name).Procs
			type pre struct {
				g    *cfg.Graph
				d    *cfg.DFS
				tree *dom.Tree
			}
			pres := make([]pre, len(procs))
			for i, p := range procs {
				g, _ := cfg.FromFunc(p.F)
				d := cfg.NewDFS(g)
				pres[i] = pre{g, d, dom.Iterative(g, d)}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := pres[i%len(pres)]
				core.NewFrom(p.g, p.d, p.tree, core.Options{})
			}
		})
	}
}

// ---- Table 2: queries (the SSA-destruction stream) ----

func queryStream(b *testing.B, name string) ([]bench.Query, *bench.Corpus) {
	b.Helper()
	c := corpus(b, name)
	var qs []bench.Query
	for _, p := range c.Procs {
		for _, q := range bench.RecordQueries(p) {
			qs = append(qs, q)
		}
	}
	if len(qs) == 0 {
		b.Skip("no queries in sample")
	}
	return qs, c
}

func BenchmarkTable2_QueryNative(b *testing.B) {
	for _, name := range []string{"164.gzip", "186.crafty"} {
		b.Run(name, func(b *testing.B) {
			qs, c := queryStream(b, name)
			oracle := map[*ir.Func]*lao.Result{}
			for _, p := range c.Procs {
				oracle[p.F] = lao.Analyze(p.F, lao.Options{PhiRelatedOnly: true})
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				oracle[q.V.Block.Func].IsLiveOut(q.V, q.B)
			}
		})
	}
}

func BenchmarkTable2_QueryNew(b *testing.B) {
	for _, name := range []string{"164.gzip", "186.crafty"} {
		b.Run(name, func(b *testing.B) {
			qs, c := queryStream(b, name)
			oracle := map[*ir.Func]*fastliveness.Liveness{}
			for _, p := range c.Procs {
				l, err := fastliveness.Analyze(p.F, fastliveness.Config{})
				if err != nil {
					b.Fatal(err)
				}
				oracle[p.F] = l
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				oracle[q.V.Block.Func].IsLiveOut(q.V, q.B)
			}
		})
	}
}

// BenchmarkTable2_QueryNewCachedUses is BenchmarkTable2_QueryNew through
// the opt-in use-set cache (Config.CacheUses): the per-use inner loop of
// Algorithm 3 collapses to one word-loop intersection against the R arena.
func BenchmarkTable2_QueryNewCachedUses(b *testing.B) {
	for _, name := range []string{"164.gzip", "186.crafty"} {
		b.Run(name, func(b *testing.B) {
			qs, c := queryStream(b, name)
			oracle := map[*ir.Func]*fastliveness.Liveness{}
			for _, p := range c.Procs {
				l, err := fastliveness.Analyze(p.F, fastliveness.Config{CacheUses: true})
				if err != nil {
					b.Fatal(err)
				}
				oracle[p.F] = l
			}
			for _, q := range qs {
				oracle[q.V.Block.Func].IsLiveOut(q.V, q.B) // warm the use-sets
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				oracle[q.V.Block.Func].IsLiveOut(q.V, q.B)
			}
		})
	}
}

// ---- Figure 3: the worked example ----

func figure3Graph() *cfg.Graph {
	g := cfg.NewGraph(11)
	edge := func(s, t int) { g.AddEdge(s-1, t-1) }
	edge(1, 2)
	edge(2, 3)
	edge(3, 4)
	edge(3, 8)
	edge(4, 5)
	edge(5, 6)
	edge(6, 7)
	edge(6, 5)
	edge(7, 2)
	edge(8, 9)
	edge(9, 10)
	edge(10, 8)
	edge(9, 6)
	edge(2, 11)
	return g
}

func BenchmarkFigure3_Queries(b *testing.B) {
	g := figure3Graph()
	c := core.New(g, core.Options{})
	defX, usesX, q10, q4 := 2, []int{8}, 9, 3
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.IsLiveIn(defX, usesX, q10) // true, two T candidates
		c.IsLiveIn(defX, usesX, q4)  // false
	}
}

func BenchmarkFigure3_Precompute(b *testing.B) {
	g := figure3Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.New(g, core.Options{})
	}
}

// ---- §6.1/§8: scaling series (quadratic precomputation) ----

func BenchmarkScaling_Precompute(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("blocks=%d", n), func(b *testing.B) {
			c := gen.Default(int64(n) * 1911)
			c.TargetBlocks = n
			f := gen.Generate("scale", c)
			ssa.Construct(f)
			g, _ := cfg.FromFunc(f)
			d := cfg.NewDFS(g)
			tree := dom.Iterative(g, d)
			var mem int
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ck := core.NewFrom(g, d, tree, core.Options{})
				mem = ck.MemoryBytes()
			}
			b.ReportMetric(float64(mem), "set-bytes")
			b.ReportMetric(float64(len(f.Blocks)), "actual-blocks")
		})
	}
}

// ---- §6.1: query cost tracks the def-use chain length ----

func BenchmarkQueryVsUses(b *testing.B) {
	// A chain of 80 if/else diamonds: cond_i -> {then_i, else_i} -> cond_i+1.
	// Uses sit in the first 64 then-branches; queries run from late
	// diamonds, where none of the uses is reachable any more. Such
	// negative queries walk the whole def-use chain (Algorithm 3's inner
	// loop), so their cost tracks the chain length — the effect §6.1's
	// use-count statistics are about.
	const m = 80
	g := cfg.NewGraph(1 + 3*m)
	cond := func(i int) int { return 1 + 3*i }
	then := func(i int) int { return 2 + 3*i }
	els := func(i int) int { return 3 + 3*i }
	g.AddEdge(0, cond(0))
	for i := 0; i < m; i++ {
		g.AddEdge(cond(i), then(i))
		g.AddEdge(cond(i), els(i))
		if i+1 < m {
			g.AddEdge(then(i), cond(i+1))
			g.AddEdge(els(i), cond(i+1))
		}
	}
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)
	ck := core.NewFrom(g, d, tree, core.Options{})
	for _, k := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("uses=%d", k), func(b *testing.B) {
			uses := make([]int, k)
			for i := range uses {
				uses[i] = then(i)
			}
			var qs []int
			for i := 70; i < m; i++ {
				for _, q := range []int{cond(i), then(i), els(i)} {
					if ck.IsLiveIn(0, uses, q) {
						b.Fatal("query unexpectedly positive")
					}
					qs = append(qs, q)
				}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ck.IsLiveIn(0, uses, qs[i%len(qs)])
			}
		})
	}
}

// ---- Ablations ----

// benchQueriesWithOptions measures random live-in queries on a fixed graph
// population under the given checker options.
func benchQueriesWithOptions(b *testing.B, reducible bool, opts core.Options) {
	rng := rand.New(rand.NewSource(23))
	type instance struct {
		ck   *core.Checker
		def  int
		uses []int
		qs   []int
	}
	var insts []instance
	for i := 0; i < 12; i++ {
		var g *cfg.Graph
		shape := graphgen.Config{MinNodes: 60, MaxNodes: 120, ExtraEdgeFactor: 1.6, BackEdgeProb: 0.4}
		if reducible {
			g = graphgen.RandomReducible(rng, shape)
		} else {
			g = graphgen.Random(rng, shape)
		}
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		ck := core.NewFrom(g, d, tree, opts)
		var dominated []int
		for v := 1; v < g.N(); v++ {
			if tree.Reachable(v) {
				dominated = append(dominated, v)
			}
		}
		if len(dominated) < 4 {
			continue
		}
		insts = append(insts, instance{
			ck:   ck,
			def:  0,
			uses: []int{dominated[len(dominated)/3], dominated[len(dominated)/2]},
			qs:   dominated,
		})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in := insts[i%len(insts)]
		in.ck.IsLiveIn(in.def, in.uses, in.qs[i%len(in.qs)])
	}
}

// Ablation A2 (§5.1): skipping dominated subtrees during the T_q walk.
// Irreducible graphs exercise multi-candidate walks.
func BenchmarkAblationSkipSubtrees(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		benchQueriesWithOptions(b, false, core.Options{NoReducibleFastPath: true})
	})
	b.Run("off", func(b *testing.B) {
		benchQueriesWithOptions(b, false, core.Options{NoReducibleFastPath: true, NoSkipSubtrees: true})
	})
}

// Ablation A3 (Theorem 2): the reducible single-test fast path.
func BenchmarkAblationReducibleFastPath(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		benchQueriesWithOptions(b, true, core.Options{})
	})
	b.Run("off", func(b *testing.B) {
		benchQueriesWithOptions(b, true, core.Options{NoReducibleFastPath: true})
	})
}

// Ablation A4 (§6.1): T sets as sorted arrays instead of bitsets.
func BenchmarkAblationSortedT(b *testing.B) {
	b.Run("bitset", func(b *testing.B) {
		benchQueriesWithOptions(b, true, core.Options{})
	})
	b.Run("sorted", func(b *testing.B) {
		benchQueriesWithOptions(b, true, core.Options{SortedT: true})
	})
}

// Ablation A1: exact Definition 5 vs the §5.2 propagation scheme
// (precomputation cost; answers are identical).
func BenchmarkAblationStrategy(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	g := graphgen.Random(rng, graphgen.Config{
		MinNodes: 300, MaxNodes: 300, ExtraEdgeFactor: 1.6, BackEdgeProb: 0.35,
	})
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)
	for _, s := range []core.Strategy{core.StrategyExact, core.StrategyPropagate} {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.NewFrom(g, d, tree, core.Options{Strategy: s})
			}
		})
	}
}

// ---- Extension E1: full live-set engines ----

func BenchmarkLiveSets(b *testing.B) {
	c := gen.Default(404)
	c.TargetBlocks = 120
	f := gen.Generate("sets", c)
	ssa.Construct(f)
	b.Run("dataflow", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dataflow.Analyze(f)
		}
	})
	b.Run("lao", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lao.Analyze(f, lao.Options{})
		}
	})
	b.Run("loopforest", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := loops.Liveness(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Extension E2: the §8 loop-forest checker vs the R/T checker ----

func BenchmarkCheckerVariants(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	g := graphgen.RandomReducible(rng, graphgen.Config{
		MinNodes: 150, MaxNodes: 150, ExtraEdgeFactor: 1.3, BackEdgeProb: 0.5,
	})
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)
	var dominated []int
	for v := 1; v < g.N(); v++ {
		if tree.Reachable(v) {
			dominated = append(dominated, v)
		}
	}
	uses := []int{dominated[len(dominated)/2], dominated[len(dominated)-1]}

	b.Run("precompute/rt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.NewFrom(g, d, tree, core.Options{})
		}
	})
	b.Run("precompute/loopforest", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := loops.NewChecker(g); err != nil {
				b.Fatal(err)
			}
		}
	})

	rt := core.NewFrom(g, d, tree, core.Options{})
	lf, err := loops.NewChecker(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("query/rt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rt.IsLiveIn(0, uses, dominated[i%len(dominated)])
		}
	})
	b.Run("query/loopforest", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lf.IsLiveIn(0, uses, dominated[i%len(dominated)])
		}
	})
	b.Run("memory", func(b *testing.B) {
		b.ReportMetric(float64(rt.MemoryBytes()), "rt-bytes")
		b.ReportMetric(float64(lf.MemoryBytes()), "loopforest-bytes")
	})
}

// ---- End-to-end: the whole destruction pass under each oracle ----

func BenchmarkDestructionEndToEnd(b *testing.B) {
	c := gen.Default(808)
	c.TargetBlocks = 60
	base := gen.Generate("destr", c)
	ssa.Construct(base)
	destruct.Prepare(base)
	b.Run("checker-oracle", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := ir.Clone(base)
			live, err := fastliveness.Analyze(f, fastliveness.Config{})
			if err != nil {
				b.Fatal(err)
			}
			destruct.Run(f, oracleFunc(live.IsLiveOut), destruct.ModeCoalesce)
		}
	})
	b.Run("dataflow-oracle", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := ir.Clone(base)
			r := dataflow.Analyze(f)
			destruct.Run(f, oracleFunc(r.IsLiveOut), destruct.ModeCoalesce)
		}
	})
	b.Run("methodI-no-queries", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := ir.Clone(base)
			destruct.Run(f, oracleFunc(nil), destruct.ModeMethodI)
		}
	})
}

type oracleFunc func(*ir.Value, *ir.Block) bool

func (o oracleFunc) IsLiveOut(v *ir.Value, b *ir.Block) bool { return o(v, b) }
