package fastliveness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestPerfGate is the CI perf-regression gate over the committed
// BENCH_*.json artifacts. Each PR's benchmark run is committed as an
// artifact rather than re-run in CI (CI machines are too noisy to time
// on), so the gate pins the properties the artifacts are required to
// demonstrate; regressing one means committing an artifact that no longer
// shows it, and the gate turns that into a test failure instead of a
// silently weaker claim.
//
// Gated properties:
//   - pipeline artifacts (BENCH_5): the checker backend completes the
//     editing pipeline with 0 staleness-forced rebuilds (the paper's §4
//     claim measured end to end), and its end-to-end cost per procedure
//     stays under a pinned ceiling.
//   - engine throughput artifacts (BENCH_6): concurrent edits never force
//     a rebuild onto a query path (query_rebuilds == 0 in every row; the
//     one background rebuild the edit schedules is expected and not
//     gated).
//   - warm-start artifacts (BENCH_7, BENCH_10): a warm process start
//     skips >= 80% of per-function precompute vs a cold one — or, when the
//     artifact pins its own higher bar via gate_min_savings (the v3 format
//     pins 90%), that bar instead — every function is served from the
//     store (hits == funcs, misses == 0), and steady-state queries on
//     snapshot-adopted arenas stay at 0 allocs/op.
//   - latency artifacts (BENCH_9): every backend's replay histogram
//     actually observed queries (count > 0), and the checker's p99 stays
//     at or below dataflow's — with edits interleaved in the stream the
//     set backends pay inline re-analysis inside their tail while the
//     checker's CFG-only precomputation never goes stale.
const (
	// checkerPipelineNsPerProcMax bounds the checker pipeline row's
	// ns_per_op/procs. The committed value is ~72.5µs/proc; the ceiling
	// leaves ~2x headroom so a re-benchmark on slower hardware passes
	// while an algorithmic regression (or an artifact from a broken
	// build) does not.
	checkerPipelineNsPerProcMax = 150_000
	// warmStartMinSavings is the acceptance floor for the snapshot tier:
	// fraction of per-function precompute a warm start must eliminate. An
	// artifact may raise (never lower) its own bar via gate_min_savings.
	warmStartMinSavings = 0.80
)

func TestPerfGate(t *testing.T) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no BENCH_*.json artifacts found; the gate has nothing to check")
	}
	sort.Strings(files)
	for _, path := range files {
		t.Run(path, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var doc map[string]json.RawMessage
			if err := json.Unmarshal(raw, &doc); err != nil {
				t.Fatalf("not a JSON object: %v", err)
			}
			if rows, ok := doc["pipeline"]; ok {
				gatePipeline(t, rows)
			}
			if rows, ok := doc["rows"]; ok {
				gateEngineRows(t, rows)
			}
			if rep, ok := doc["warmstart"]; ok {
				gateWarmStart(t, rep)
			}
			if rows, ok := doc["latency"]; ok {
				gateLatency(t, rows)
			}
		})
	}
}

func gatePipeline(t *testing.T, raw json.RawMessage) {
	var rows []struct {
		Name     string  `json:"name"`
		Procs    int     `json:"procs"`
		NsPerOp  float64 `json:"ns_per_op"`
		Rebuilds int64   `json:"rebuilds"`
	}
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("pipeline rows: %v", err)
	}
	found := false
	for _, r := range rows {
		if r.Name != "checker" {
			continue
		}
		found = true
		if r.Rebuilds != 0 {
			t.Errorf("checker pipeline row reports %d staleness-forced rebuilds, want 0", r.Rebuilds)
		}
		if r.Procs <= 0 {
			t.Errorf("checker pipeline row has procs=%d", r.Procs)
			continue
		}
		if perProc := r.NsPerOp / float64(r.Procs); perProc > checkerPipelineNsPerProcMax {
			t.Errorf("checker pipeline cost %.0f ns/proc exceeds the %d ns/proc ceiling",
				perProc, int(checkerPipelineNsPerProcMax))
		}
	}
	if !found {
		t.Error("pipeline artifact has no checker row")
	}
}

func gateEngineRows(t *testing.T, raw json.RawMessage) {
	var rows []map[string]json.RawMessage
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("rows: %v", err)
	}
	for i, r := range rows {
		qr, ok := r["query_rebuilds"]
		if !ok {
			continue // not an engine-throughput row shape
		}
		var n int64
		if err := json.Unmarshal(qr, &n); err != nil {
			t.Errorf("row %d: query_rebuilds: %v", i, err)
			continue
		}
		if n != 0 {
			t.Errorf("row %d: %d rebuilds forced onto query paths, want 0", i, n)
		}
	}
}

func gateLatency(t *testing.T, raw json.RawMessage) {
	var rows []struct {
		Name     string `json:"name"`
		Queries  int64  `json:"queries"`
		Edits    int64  `json:"edits"`
		Rebuilds int64  `json:"rebuilds"`
		P99Ns    int64  `json:"p99_ns"`
	}
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("latency rows: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("latency artifact has no rows")
	}
	var checkerP99, dataflowP99 int64 = -1, -1
	for _, r := range rows {
		if r.Queries <= 0 {
			t.Errorf("%s: latency histogram observed %d queries, want > 0", r.Name, r.Queries)
		}
		if r.P99Ns <= 0 {
			t.Errorf("%s: p99 = %d ns, want > 0", r.Name, r.P99Ns)
		}
		switch r.Name {
		case "checker":
			checkerP99 = r.P99Ns
			if r.Edits > 0 && r.Rebuilds != 0 {
				t.Errorf("checker replay paid %d rebuilds under instruction edits, want 0", r.Rebuilds)
			}
		case "dataflow":
			dataflowP99 = r.P99Ns
		}
	}
	switch {
	case checkerP99 < 0 || dataflowP99 < 0:
		t.Error("latency artifact missing the checker or dataflow row")
	case checkerP99 > dataflowP99:
		t.Errorf("checker p99 (%d ns) exceeds dataflow p99 (%d ns); the tail must show the invalidation asymmetry",
			checkerP99, dataflowP99)
	}
}

func gateWarmStart(t *testing.T, raw json.RawMessage) {
	var rep struct {
		GateMinSavings float64 `json:"gate_min_savings"`
		Rows           []struct {
			Funcs          int     `json:"funcs"`
			Savings        float64 `json:"savings"`
			Hits           int64   `json:"snapshot_hits"`
			Misses         int64   `json:"snapshot_misses"`
			QueryAllocsPer float64 `json:"warm_query_allocs_per_op"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("warmstart report: %v", err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("warmstart artifact has no rows")
	}
	// The artifact's self-declared bar can only tighten the global floor:
	// older artifacts without the field (BENCH_7) gate at 0.80, v3 artifacts
	// pin 0.90 and are held to it.
	minSavings := warmStartMinSavings
	if rep.GateMinSavings > minSavings {
		minSavings = rep.GateMinSavings
	}
	for _, r := range rep.Rows {
		if r.Savings < minSavings {
			t.Errorf("funcs=%d: warm start saves only %.1f%% of per-function precompute, want >= %.0f%%",
				r.Funcs, r.Savings*100, minSavings*100)
		}
		if r.Hits != int64(r.Funcs) || r.Misses != 0 {
			t.Errorf("funcs=%d: warm run hit %d/%d with %d misses; every function must load from the store",
				r.Funcs, r.Hits, r.Funcs, r.Misses)
		}
		if r.QueryAllocsPer != 0 {
			t.Errorf("funcs=%d: steady-state queries allocate %.1f/op on snapshot-adopted arenas, want 0",
				r.Funcs, r.QueryAllocsPer)
		}
	}
}
